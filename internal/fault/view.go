package fault

// View is the shared fleet-membership view: which GPUs are alive, plus a
// generation counter bumped on every change. Collectives capture the
// generation when an attempt starts and abort when it is superseded;
// OnChange hooks let communicators and coordinators reset their wait state
// the instant a member dies. All methods run in engine context (single
// process at a time), so no locking is needed.
type View struct {
	alive    []bool
	liveN    int
	gen      int
	onChange []func()
}

// NewView returns a view with all n GPUs alive at generation 0.
func NewView(n int) *View {
	v := &View{alive: make([]bool, n), liveN: n}
	for i := range v.alive {
		v.alive[i] = true
	}
	return v
}

// N returns the fleet size (alive or dead).
func (v *View) N() int { return len(v.alive) }

// Alive reports whether GPU g is alive.
func (v *View) Alive(g int) bool { return v.alive[g] }

// Gen returns the membership generation (increments on every death).
func (v *View) Gen() int { return v.gen }

// LiveCount returns the number of live GPUs.
func (v *View) LiveCount() int { return v.liveN }

// LowestLive returns the smallest live GPU id, or -1 if none (the CCC
// leader under failover).
func (v *View) LowestLive() int {
	for g, a := range v.alive {
		if a {
			return g
		}
	}
	return -1
}

// NextLive returns the first live GPU after g in cyclic order (the fallback
// replica for requests owned by a dead GPU), or -1 if none.
func (v *View) NextLive(g int) int {
	n := len(v.alive)
	for i := 1; i <= n; i++ {
		c := (g + i) % n
		if v.alive[c] {
			return c
		}
	}
	return -1
}

// LiveRanks returns the live GPU ids in ascending order.
func (v *View) LiveRanks() []int {
	out := make([]int, 0, v.liveN)
	for g, a := range v.alive {
		if a {
			out = append(out, g)
		}
	}
	return out
}

// Dead returns the dead GPU ids in ascending order.
func (v *View) Dead() []int {
	out := make([]int, 0, len(v.alive)-v.liveN)
	for g, a := range v.alive {
		if !a {
			out = append(out, g)
		}
	}
	return out
}

// OnChange registers a hook called (in registration order) each time a GPU
// dies, after the view reflects the death. Hooks must not park.
func (v *View) OnChange(fn func()) {
	v.onChange = append(v.onChange, fn)
}

// Kill marks GPU g dead, bumps the generation and runs the OnChange hooks.
// Killing a dead GPU is a no-op.
func (v *View) Kill(g int) {
	if !v.alive[g] {
		return
	}
	v.alive[g] = false
	v.liveN--
	v.gen++
	for _, fn := range v.onChange {
		fn()
	}
}
