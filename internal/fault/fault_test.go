package fault

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "crash@gpu2:t=1.5,stall@gpu0:t=0.8+50ms,linkdown@gpu0-gpu1:t=0.5+10ms,degrade@gpu1-gpu2:t=0.3+20ms:x4"
	fs, err := ParseSpec(spec, 4)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(fs) != 4 {
		t.Fatalf("parsed %d faults, want 4", len(fs))
	}
	want := []Fault{
		{Kind: Crash, GPU: 2, At: 1.5},
		{Kind: Stall, GPU: 0, At: 0.8, Duration: 0.05},
		{Kind: LinkDown, GPU: 0, Peer: 1, At: 0.5, Duration: 0.01},
		{Kind: LinkDegrade, GPU: 1, Peer: 2, At: 0.3, Duration: 0.02, Factor: 4},
	}
	for i, f := range fs {
		if f != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
	back, err := ParseSpec(FormatSpec(fs), 4)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	for i := range fs {
		if back[i] != fs[i] {
			t.Errorf("round trip fault %d = %+v, want %+v", i, back[i], fs[i])
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"crash@gpu9:t=1",                 // out of range
		"melt@gpu0:t=1",                  // unknown kind
		"crash@gpu0",                     // missing time
		"crash@gpu0:t=-1",                // negative time
		"crash@gpu0:t=1+5ms",             // crash with duration
		"stall@gpu0:t=1",                 // stall without duration
		"linkdown@gpu0:t=1+5ms",          // link fault without pair
		"degrade@gpu0-gpu0:t=1+5s",       // same endpoints
		"degrade@gpu0-gpu1:t=1+5ms:x0.5", // factor <= 1
	}
	for _, s := range bad {
		if _, err := ParseSpec(s, 4); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", s)
		}
	}
	if fs, err := ParseSpec("  ", 4); err != nil || fs != nil {
		t.Errorf("blank spec: got %v, %v; want nil, nil", fs, err)
	}
}

func TestViewMembership(t *testing.T) {
	v := NewView(4)
	if v.LiveCount() != 4 || v.LowestLive() != 0 || v.Gen() != 0 {
		t.Fatalf("fresh view wrong: %+v", v)
	}
	changes := 0
	v.OnChange(func() { changes++ })
	v.Kill(0)
	v.Kill(0) // no-op
	if v.Gen() != 1 || changes != 1 {
		t.Fatalf("gen=%d changes=%d after one death, want 1/1", v.Gen(), changes)
	}
	if v.LowestLive() != 1 {
		t.Fatalf("leader after gpu0 death = %d, want 1", v.LowestLive())
	}
	v.Kill(2)
	if got := v.NextLive(1); got != 3 {
		t.Fatalf("NextLive(1) = %d, want 3 (gpu2 dead)", got)
	}
	if got := v.NextLive(3); got != 1 {
		t.Fatalf("NextLive(3) = %d, want 1 (wraps past dead gpu0)", got)
	}
	if d := v.Dead(); len(d) != 2 || d[0] != 0 || d[1] != 2 {
		t.Fatalf("Dead() = %v, want [0 2]", d)
	}
}

func TestCrashInterruptsEngine(t *testing.T) {
	m := hw.NewMachine(4, hw.V100(), hw.XeonE5())
	inj, err := NewInjector(m, []Fault{{Kind: Crash, GPU: 2, At: 0.5}})
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	for g := 0; g < 4; g++ {
		m.Eng.Go("worker", func(p *sim.Proc) { p.Sleep(2) })
	}
	inj.Arm()
	end, err := m.Eng.Run()
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CrashError", err)
	}
	if ce.GPU != 2 || ce.At != 0.5 || end != 0.5 {
		t.Fatalf("crash = %+v at end %g, want gpu2 t=0.5", ce, float64(end))
	}
	if inj.View().Alive(2) || inj.View().LiveCount() != 3 {
		t.Fatalf("view not updated: %v", inj.View().LiveRanks())
	}
}

func TestStallDelaysKernels(t *testing.T) {
	run := func(withStall bool) sim.Time {
		m := hw.NewMachine(2, hw.V100(), hw.XeonE5())
		var faults []Fault
		if withStall {
			faults = []Fault{{Kind: Stall, GPU: 0, At: 0.001, Duration: 0.05}}
		}
		inj, err := NewInjector(m, faults)
		if err != nil {
			t.Fatalf("injector: %v", err)
		}
		m.Eng.Go("gpu0", func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				m.GPUs[0].RunKernel(p, hw.KernelSample, 1<<20)
			}
		})
		inj.Arm()
		end, err := m.Eng.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return end
	}
	healthy, stalled := run(false), run(true)
	if stalled < healthy+0.045 {
		t.Fatalf("stall did not delay work: healthy end %g, stalled end %g", float64(healthy), float64(stalled))
	}
}

func TestLinkDegradeSlowsTransfer(t *testing.T) {
	run := func(factor float64) sim.Time {
		m := hw.NewMachine(4, hw.V100(), hw.XeonE5())
		var faults []Fault
		if factor > 1 {
			faults = []Fault{{Kind: LinkDegrade, GPU: 0, Peer: 1, At: 0, Duration: 10, Factor: factor}}
		}
		inj, err := NewInjector(m, faults)
		if err != nil {
			t.Fatalf("injector: %v", err)
		}
		m.Eng.Go("xfer", func(p *sim.Proc) {
			p.Sleep(1e-4) // let the injector apply the degrade first
			m.Fabric.Transfer(p, 0, 1, 64<<20, hw.TrafficFeature)
		})
		inj.Arm()
		end, err := m.Eng.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return end
	}
	healthy, degraded := run(0), run(4)
	if degraded < healthy*2 {
		t.Fatalf("x4 degrade barely slowed the transfer: healthy %g, degraded %g", float64(healthy), float64(degraded))
	}
}

func TestInjectorSkipsFaultsBeforeBase(t *testing.T) {
	m := hw.NewMachine(2, hw.V100(), hw.XeonE5())
	inj, err := NewInjector(m, []Fault{
		{Kind: Crash, GPU: 1, At: 0.5},
		{Kind: Crash, GPU: 0, At: 5.0},
	})
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	inj.Base = 1.0 // the gpu1 crash happened on a previous incarnation
	m.Eng.Go("work", func(p *sim.Proc) { p.Sleep(1) })
	inj.Arm()
	end, err := m.Eng.Run()
	if err != nil {
		t.Fatalf("run: %v (the skipped crash must not fire)", err)
	}
	if end != 1 {
		t.Fatalf("end = %g, want 1", float64(end))
	}
	if len(inj.Applied()) != 0 {
		t.Fatalf("applied %d faults, want 0", len(inj.Applied()))
	}
}

func TestRandomScheduleDeterministicAndBounded(t *testing.T) {
	a := RandomSchedule(7, 4, 1.0, 8, 16, 0.01)
	b := RandomSchedule(7, 4, 1.0, 8, 16, 0.01)
	if len(a) == 0 {
		t.Fatalf("high-rate schedule produced no faults")
	}
	if len(a) != len(b) {
		t.Fatalf("same-seed schedules differ in length: %d vs %d", len(a), len(b))
	}
	crashes := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed schedules differ at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted at %d", i)
		}
		if a[i].Kind == Crash {
			crashes++
		}
	}
	if crashes > 3 {
		t.Fatalf("%d crashes on a 4-GPU fleet; at least one GPU must survive", crashes)
	}
	c := RandomSchedule(8, 4, 1.0, 8, 16, 0.01)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical schedules")
	}
}
