package store

import "repro/internal/prof"

// Section converts the tier's accounting to the dsp-runreport/1 store
// section. Returns nil when the store saw no traffic, so fully-in-memory
// runs omit the section.
func Section(st Stats) *prof.StoreSection {
	if st.Hits+st.Misses == 0 && st.PrefetchIssued == 0 {
		return nil
	}
	return &prof.StoreSection{
		Blocks:           st.Blocks,
		TopoBlocks:       st.TopoBlocks,
		BlockBytes:       st.BlockBytes,
		Compressed:       st.Compressed,
		CacheBytes:       st.CacheBytes,
		ResidentBytes:    st.ResidentBytes,
		SpilledBytes:     st.SpilledBytes,
		Hits:             st.Hits,
		Misses:           st.Misses,
		HitRate:          st.HitRate(),
		DemandBytes:      st.DemandBytes,
		PrefetchIssued:   st.PrefetchIssued,
		PrefetchUsed:     st.PrefetchUsed,
		PrefetchAccuracy: st.PrefetchAccuracy(),
		PrefetchBytes:    st.PrefetchBytes,
		StallTime:        float64(st.StallTime),
		DeviceReads:      st.DeviceReads,
		DeviceBytes:      st.DeviceBytes,
	}
}
