package store

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/sim"
)

// testSpill is a device with round numbers: 1 ms access, 1 GB/s.
func testSpill() hw.SpillSpec {
	return hw.SpillSpec{Name: "test", Bandwidth: 1e9, Latency: 1e-3, QueueDepth: 2}
}

// uniformCSR builds n nodes each with degree d (neighbours ascending).
func uniformCSR(n, d int) *graph.CSR {
	var src, dst []graph.NodeID
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			src = append(src, graph.NodeID((v+j+1)%n))
			dst = append(dst, graph.NodeID(v))
		}
	}
	return graph.FromEdges(n, src, dst)
}

func TestDemandMissChargesIO(t *testing.T) {
	eng := sim.NewEngine()
	g := uniformCSR(64, 4)
	st, err := New(eng, g, 0, 0, Config{
		BlockNodes: 16, CacheBytes: g.TopologyBytes(), Spill: testSpill(),
	})
	if err != nil {
		t.Fatal(err)
	}
	blockBytes := g.RangeBytes(0, 16)
	want := sim.Time(1e-3 + float64(blockBytes)/1e9)
	var got sim.Time
	eng.Go("reader", func(p *sim.Proc) {
		st.TouchTopology(p, []graph.NodeID{0, 1, 15})
		got = p.Now()
		// Second touch of the same block is free.
		st.TouchTopology(p, []graph.NodeID{3})
		if p.Now() != got {
			t.Errorf("resident touch advanced time: %v -> %v", got, p.Now())
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("demand fetch took %v, want %v", got, want)
	}
	s := st.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", s.Hits, s.Misses)
	}
	if s.DemandBytes != blockBytes {
		t.Errorf("demand bytes %d, want %d", s.DemandBytes, blockBytes)
	}
	if s.StallTime != want {
		t.Errorf("stall %v, want %v", s.StallTime, want)
	}
	if s.DeviceReads != 1 || s.DeviceBytes != blockBytes {
		t.Errorf("device reads=%d bytes=%d", s.DeviceReads, s.DeviceBytes)
	}
}

func TestCompressedDecodeCharged(t *testing.T) {
	eng := sim.NewEngine()
	g := graph.Compress(uniformCSR(64, 4))
	st, err := New(eng, g, 0, 0, Config{
		BlockNodes: 16, CacheBytes: g.TopologyBytes(),
		Spill: testSpill(), DecodeRate: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	blockBytes := g.RangeBytes(0, 16)
	want := sim.Time(1e-3 + float64(blockBytes)/1e9 + float64(blockBytes)/1e6)
	var got sim.Time
	eng.Go("reader", func(p *sim.Proc) {
		st.TouchTopology(p, []graph.NodeID{0})
		got = p.Now()
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("compressed fetch took %v, want %v (decode charged)", got, want)
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	eng := sim.NewEngine()
	g := uniformCSR(64, 4) // four 16-node blocks, equal sizes except sentinel
	b0 := g.RangeBytes(0, 16)
	st, err := New(eng, g, 0, 0, Config{
		BlockNodes: 16, CacheBytes: 2*b0 + 16, Spill: testSpill(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("reader", func(p *sim.Proc) {
		st.TouchTopology(p, []graph.NodeID{0})  // block 0
		st.TouchTopology(p, []graph.NodeID{16}) // block 1
		st.TouchTopology(p, []graph.NodeID{32}) // block 2 -> evicts block 0 (LRU)
		st.TouchTopology(p, []graph.NodeID{16}) // still resident
		st.TouchTopology(p, []graph.NodeID{0})  // miss again
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Misses != 4 {
		t.Errorf("misses = %d, want 4 (block 0 evicted and refetched)", s.Misses)
	}
	if s.Hits != 1 {
		t.Errorf("hits = %d, want 1 (block 1 survived)", s.Hits)
	}
	if s.ResidentBytes > st.CacheBytes() {
		t.Errorf("resident %d exceeds budget %d", s.ResidentBytes, st.CacheBytes())
	}
	if s.ResidentBytes+s.SpilledBytes != s.BlockBytes {
		t.Errorf("resident+spilled = %d, want %d", s.ResidentBytes+s.SpilledBytes, s.BlockBytes)
	}
}

func TestPrefetchOverlapsAndCounts(t *testing.T) {
	eng := sim.NewEngine()
	g := uniformCSR(64, 4)
	st, err := New(eng, g, 0, 0, Config{
		BlockNodes: 16, CacheBytes: g.TopologyBytes(),
		Prefetch: true, Spill: testSpill(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("reader", func(p *sim.Proc) {
		st.PrefetchTopology([]graph.NodeID{0, 16})
		p.Sleep(0.1) // far longer than both fetches
		t0 := p.Now()
		st.TouchTopology(p, []graph.NodeID{0, 16})
		if p.Now() != t0 {
			t.Errorf("fully-overlapped touch stalled %v", p.Now()-t0)
		}
		// Prefetch then touch immediately: reader waits on the in-flight
		// event, paying only the remainder, and it still counts as a hit.
		st.PrefetchTopology([]graph.NodeID{32})
		t1 := p.Now()
		st.TouchTopology(p, []graph.NodeID{32})
		stall := p.Now() - t1
		full := sim.Time(1e-3 + float64(g.RangeBytes(32, 48))/1e9)
		if stall <= 0 || stall > full {
			t.Errorf("in-flight wait stalled %v, want (0, %v]", stall, full)
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Misses != 0 {
		t.Errorf("misses = %d, want 0 with prefetch", s.Misses)
	}
	if s.Hits != 3 {
		t.Errorf("hits = %d, want 3", s.Hits)
	}
	if s.PrefetchIssued != 3 || s.PrefetchUsed != 3 {
		t.Errorf("prefetch issued=%d used=%d, want 3/3", s.PrefetchIssued, s.PrefetchUsed)
	}
	if s.PrefetchAccuracy() != 1 {
		t.Errorf("accuracy = %v, want 1", s.PrefetchAccuracy())
	}
	if s.DemandBytes != 0 {
		t.Errorf("demand bytes = %d, want 0", s.DemandBytes)
	}
}

func TestPrefetchDisabledIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	g := uniformCSR(64, 4)
	st, err := New(eng, g, 0, 0, Config{BlockNodes: 16, Spill: testSpill()})
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("reader", func(p *sim.Proc) {
		st.PrefetchTopology([]graph.NodeID{0})
		p.Sleep(0.1)
		st.TouchTopology(p, []graph.NodeID{0})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.PrefetchIssued != 0 || s.Misses != 1 {
		t.Errorf("issued=%d misses=%d, want 0/1 with prefetch off", s.PrefetchIssued, s.Misses)
	}
}

func TestFeatureTierSeparateBlocks(t *testing.T) {
	eng := sim.NewEngine()
	g := uniformCSR(32, 2)
	const rows, rowBytes = 32, 256
	st, err := New(eng, g, rows, rowBytes, Config{
		BlockNodes: 16, CacheBytes: 1 << 30, Spill: testSpill(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("reader", func(p *sim.Proc) {
		st.TouchFeatures(p, []graph.NodeID{0, 17}) // both feature blocks
		st.TouchTopology(p, []graph.NodeID{0})     // topology block 0 still cold
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Blocks != 4 || s.TopoBlocks != 2 {
		t.Fatalf("blocks=%d topo=%d, want 4/2", s.Blocks, s.TopoBlocks)
	}
	if s.Misses != 3 {
		t.Errorf("misses = %d, want 3 (feature and topology tiers are distinct)", s.Misses)
	}
	wantFeat := int64(2 * 16 * rowBytes)
	if got := s.DemandBytes - g.RangeBytes(0, 16); got != wantFeat {
		t.Errorf("feature demand bytes = %d, want %d", got, wantFeat)
	}
}

func TestMaxInflightBoundsPrefetch(t *testing.T) {
	eng := sim.NewEngine()
	g := uniformCSR(128, 4) // eight 16-node blocks
	st, err := New(eng, g, 0, 0, Config{
		BlockNodes: 16, CacheBytes: 1 << 30,
		Prefetch: true, MaxInflight: 2, Spill: testSpill(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("reader", func(p *sim.Proc) {
		all := make([]graph.NodeID, 0, 8)
		for b := 0; b < 8; b++ {
			all = append(all, graph.NodeID(b*16))
		}
		st.PrefetchTopology(all)
	})
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// MaxInflight bounds concurrency, not coverage: every predicted block is
	// eventually fetched, two at a time — so the makespan is four serialised
	// waves of the ~1 ms device latency, not one.
	if s := st.Stats(); s.PrefetchIssued != 8 {
		t.Errorf("issued = %d, want 8 (queue drains as slots free)", s.PrefetchIssued)
	}
	if end < 3.5e-3 || end > 4.5e-3 {
		t.Errorf("makespan = %v, want ~4ms (4 waves of 2 concurrent fetches)", end)
	}
}

// runScenario drives a randomized but seeded access pattern and returns the
// final stats, for the determinism check below.
func runScenario(seed int64) Stats {
	eng := sim.NewEngine()
	g := uniformCSR(256, 6)
	st, _ := New(eng, g, 256, 128, Config{
		BlockNodes: 32, CacheBytes: g.TopologyBytes() / 2,
		Prefetch: true, Spill: testSpill(),
	})
	for w := 0; w < 3; w++ {
		w := w
		eng.Go("worker", func(p *sim.Proc) {
			lr := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < 40; i++ {
				ids := []graph.NodeID{graph.NodeID(lr.Intn(256))}
				if lr.Intn(2) == 0 {
					st.PrefetchTopology([]graph.NodeID{graph.NodeID(lr.Intn(256))})
				}
				st.TouchTopology(p, ids)
				st.TouchFeatures(p, ids)
				p.Sleep(sim.Time(float64(lr.Intn(5)) * 1e-4))
			}
		})
	}
	eng.Run()
	return st.Stats()
}

func TestDeterministicStats(t *testing.T) {
	a := runScenario(42)
	b := runScenario(42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", a, b)
	}
	if a.Hits+a.Misses == 0 {
		t.Fatal("scenario produced no traffic")
	}
}

func TestBlockNodesAlignsToCompressedBlockSize(t *testing.T) {
	eng := sim.NewEngine()
	g := graph.CompressBlocks(uniformCSR(64, 4), 7)
	st, err := New(eng, g, 0, 0, Config{BlockNodes: 10, Spill: testSpill()})
	if err != nil {
		t.Fatal(err)
	}
	if st.blockNodes%7 != 0 {
		t.Errorf("blockNodes %d not aligned to compressed block size 7", st.blockNodes)
	}
	var total int64
	for _, b := range st.blocks {
		total += b.bytes
	}
	if total != g.TopologyBytes() {
		t.Errorf("block bytes sum %d != topology bytes %d", total, g.TopologyBytes())
	}
}
