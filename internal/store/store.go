// Package store is the out-of-core graph tier below the host: when a graph's
// topology and feature rows exceed host memory, fixed-size node-range blocks
// spill to a simulated NVMe/disk device (internal/hw.SpillDevice) and an
// LRU-resident block cache under a byte budget serves reads.
//
// The tier sits UNDER the existing hierarchy — GPU caches miss to host
// memory, and host memory itself is now a block cache over the spill device.
// A demand read of a non-resident block stalls the reader for the device I/O
// (plus varint decode for compressed topology blocks); the BGL-style
// proximity-aware prefetcher instead walks the sampling frontier — each
// assembled layer's input nodes are the next layer's adjacency reads, and a
// sampled mini-batch's input nodes are the loader's feature reads — fetching
// likely-next blocks in background procs so the I/O overlaps compute.
//
// Everything is deterministic virtual time: same seed, same flags,
// byte-identical counters.
package store

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config tunes the out-of-core tier.
type Config struct {
	// BlockNodes is the node-range width of one block (topology and feature
	// tiers both; default 4096). Rounded up to the compressed encoding's
	// offset granularity when the topology is compressed.
	BlockNodes int
	// CacheBytes is the host block-cache budget. <=0 selects half the total
	// block bytes — enough to force real spill traffic on any graph.
	CacheBytes int64
	// Prefetch enables the proximity-aware prefetcher.
	Prefetch bool
	// MaxInflight bounds concurrent background prefetch fetches (default 4).
	MaxInflight int
	// Spill is the backing device (zero value = hw.NVMeSpill).
	Spill hw.SpillSpec
	// DecodeRate is the host-side decode throughput for compressed topology
	// blocks in bytes/second (default 2 GB/s; only charged when the topology
	// is compressed).
	DecodeRate float64
	// LatencyScale divides the spill device's fixed per-read latency, the
	// same scaling the fabric applies for shrunk benchmark runs.
	LatencyScale float64
	// Tracer, when set, records "store" counter events (resident bytes, hit
	// and prefetch totals) at every block fetch; TracePid selects the lane.
	Tracer   *trace.Tracer
	TracePid int
}

// Stats is the tier's cumulative accounting.
type Stats struct {
	// Blocks and BlockBytes describe the whole block table; TopoBlocks of
	// the blocks cover topology, the rest feature rows.
	Blocks     int
	TopoBlocks int
	BlockBytes int64
	// Compressed records whether topology blocks store the varint encoding.
	Compressed bool
	// CacheBytes is the resolved host block-cache budget.
	CacheBytes int64
	// ResidentBytes is the block bytes currently in the host cache;
	// SpilledBytes is the remainder living only on the spill device.
	ResidentBytes int64
	SpilledBytes  int64
	// Hits count block touches served from (or overlapped into) the cache;
	// Misses stalled on a demand fetch.
	Hits, Misses int64
	// DemandBytes were fetched inline by stalled readers; PrefetchBytes by
	// the background prefetcher.
	DemandBytes, PrefetchBytes int64
	// PrefetchIssued counts background fetches started; PrefetchUsed those
	// whose block was touched by a reader before eviction. Used/Issued is
	// the prefetch accuracy.
	PrefetchIssued, PrefetchUsed int64
	// StallTime is virtual time readers spent blocked on fetches.
	StallTime sim.Time
	// DeviceReads/DeviceBytes are the spill device's totals.
	DeviceReads, DeviceBytes int64
}

// HitRate returns Hits/(Hits+Misses), 0 when untouched.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// PrefetchAccuracy returns PrefetchUsed/PrefetchIssued, 0 when idle.
func (s Stats) PrefetchAccuracy() float64 {
	if s.PrefetchIssued == 0 {
		return 0
	}
	return float64(s.PrefetchUsed) / float64(s.PrefetchIssued)
}

// block is one node-range block's cache state.
type block struct {
	bytes    int64
	resident bool
	// inflight is non-nil while a fetch is in progress; waiters block on it.
	inflight *sim.Event
	// viaPrefetch marks a block fetched by the prefetcher and not yet
	// touched by a reader (the accuracy numerator counts its first touch).
	viaPrefetch bool
	lastUse     int64
}

// Store is the out-of-core block tier for one machine's graph.
type Store struct {
	eng *sim.Engine
	dev *hw.SpillDevice
	cfg Config

	blocks     []block
	nTopo      int
	blockNodes int
	compressed bool
	decodeRate float64
	totalBytes int64
	resident   int64

	inflightPrefetch int
	// pending queues predicted blocks awaiting a prefetch slot; fetch
	// completions drain it, so MaxInflight bounds concurrency, not coverage.
	pending []int
	clock   int64
	stats   Stats
}

// New builds the block table over a topology plus featRows feature rows of
// rowBytes each (featRows 0 = topology only). The cache starts cold: every
// block begins on the spill device and the first epoch's reads warm it.
func New(eng *sim.Engine, topo graph.Topology, featRows, rowBytes int, cfg Config) (*Store, error) {
	if topo == nil {
		return nil, fmt.Errorf("store: nil topology")
	}
	if cfg.BlockNodes <= 0 {
		cfg.BlockNodes = 4096
	}
	comp, isComp := topo.(*graph.CompressedCSR)
	if isComp && cfg.BlockNodes%comp.BlockSize != 0 {
		cfg.BlockNodes += comp.BlockSize - cfg.BlockNodes%comp.BlockSize
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.DecodeRate <= 0 {
		cfg.DecodeRate = 2e9
	}
	s := &Store{
		eng: eng, dev: hw.NewSpillDevice(eng, cfg.Spill, cfg.LatencyScale),
		cfg: cfg, blockNodes: cfg.BlockNodes, compressed: isComp,
		decodeRate: cfg.DecodeRate,
	}
	n := topo.NumNodes()
	for lo := 0; lo < n; lo += cfg.BlockNodes {
		hi := lo + cfg.BlockNodes
		if hi > n {
			hi = n
		}
		var b int64
		if isComp {
			b = comp.RangeBytes(graph.NodeID(lo), graph.NodeID(hi))
		} else {
			b = topo.(*graph.CSR).RangeBytes(graph.NodeID(lo), graph.NodeID(hi))
		}
		s.blocks = append(s.blocks, block{bytes: b})
		s.totalBytes += b
	}
	s.nTopo = len(s.blocks)
	for lo := 0; lo < featRows; lo += cfg.BlockNodes {
		hi := lo + cfg.BlockNodes
		if hi > featRows {
			hi = featRows
		}
		b := int64(hi-lo) * int64(rowBytes)
		s.blocks = append(s.blocks, block{bytes: b})
		s.totalBytes += b
	}
	if s.cfg.CacheBytes <= 0 {
		s.cfg.CacheBytes = s.totalBytes / 2
	}
	s.stats.Blocks = len(s.blocks)
	s.stats.TopoBlocks = s.nTopo
	s.stats.BlockBytes = s.totalBytes
	s.stats.Compressed = isComp
	s.stats.CacheBytes = s.cfg.CacheBytes
	return s, nil
}

// CacheBytes returns the resolved host block-cache budget.
func (s *Store) CacheBytes() int64 { return s.cfg.CacheBytes }

// Stats returns a snapshot of the cumulative accounting.
func (s *Store) Stats() Stats {
	st := s.stats
	st.ResidentBytes = s.resident
	st.SpilledBytes = s.totalBytes - s.resident
	st.DeviceReads = s.dev.Reads
	st.DeviceBytes = s.dev.BytesRead
	return st
}

// TouchTopology implements csp.HostStore: before host memory serves the
// adjacency rows of ids, their backing blocks must be cache-resident;
// non-resident blocks stall the caller for the spill fetch (and decode).
func (s *Store) TouchTopology(p *sim.Proc, ids []graph.NodeID) {
	for _, b := range s.uniqueBlocks(ids, 0) {
		s.ensure(p, b)
	}
}

// TouchFeatures is TouchTopology for the feature-row tier (the loader's UVA
// host reads).
func (s *Store) TouchFeatures(p *sim.Proc, ids []graph.NodeID) {
	for _, b := range s.uniqueBlocks(ids, s.nTopo) {
		s.ensure(p, b)
	}
}

// PrefetchTopology implements csp.HostStore: fetch the blocks backing ids in
// background procs so a later touch finds them resident or in flight.
func (s *Store) PrefetchTopology(ids []graph.NodeID) {
	s.prefetch(s.uniqueBlocks(ids, 0))
}

// PrefetchFeatures is PrefetchTopology for the feature-row tier.
func (s *Store) PrefetchFeatures(ids []graph.NodeID) {
	s.prefetch(s.uniqueBlocks(ids, s.nTopo))
}

// uniqueBlocks maps ids to block indices (offset by base for the feature
// tier), deduplicated in first-appearance order — deterministic for a
// deterministic id stream.
func (s *Store) uniqueBlocks(ids []graph.NodeID, base int) []int {
	seen := make(map[int]struct{}, 8)
	var out []int
	for _, v := range ids {
		b := base + int(v)/s.blockNodes
		if _, ok := seen[b]; ok {
			continue
		}
		seen[b] = struct{}{}
		out = append(out, b)
	}
	return out
}

// ensure makes block b resident for a demand reader, stalling it on the
// fetch when needed.
func (s *Store) ensure(p *sim.Proc, b int) {
	blk := &s.blocks[b]
	s.clock++
	blk.lastUse = s.clock
	if blk.resident {
		s.stats.Hits++
		s.markUsed(blk)
		return
	}
	if ev := blk.inflight; ev != nil {
		// A fetch (usually a prefetch) is already in flight: the reader only
		// pays the remaining overlap, and the touch counts as a hit.
		t0 := p.Now()
		ev.Wait(p)
		s.stats.StallTime += p.Now() - t0
		s.stats.Hits++
		s.clock++
		s.blocks[b].lastUse = s.clock
		s.markUsed(&s.blocks[b])
		return
	}
	s.stats.Misses++
	s.stats.DemandBytes += blk.bytes
	t0 := p.Now()
	s.fetch(p, b)
	s.stats.StallTime += p.Now() - t0
}

func (s *Store) markUsed(blk *block) {
	if blk.viaPrefetch {
		blk.viaPrefetch = false
		s.stats.PrefetchUsed++
	}
}

// prefetch queues background fetches for the given non-resident blocks.
// MaxInflight bounds how many run concurrently; the rest wait in the pending
// queue and issue as completions free slots, so every prediction is
// eventually covered (unless a demand touch got there first).
func (s *Store) prefetch(bs []int) {
	if !s.cfg.Prefetch {
		return
	}
	s.pending = append(s.pending, bs...)
	// Predictions go stale after roughly a batch; cap the queue so a burst
	// can't keep issuing long-obsolete fetches.
	if max := 16 * s.cfg.MaxInflight; len(s.pending) > max {
		s.pending = s.pending[len(s.pending)-max:]
	}
	s.drainPrefetch()
}

// drainPrefetch issues queued prefetches while slots are free, skipping
// blocks a demand fetch or earlier prefetch already covers.
func (s *Store) drainPrefetch() {
	for s.inflightPrefetch < s.cfg.MaxInflight && len(s.pending) > 0 {
		b := s.pending[0]
		s.pending = s.pending[1:]
		blk := &s.blocks[b]
		if blk.resident || blk.inflight != nil {
			continue
		}
		s.inflightPrefetch++
		s.stats.PrefetchIssued++
		s.stats.PrefetchBytes += blk.bytes
		blk.viaPrefetch = true
		// Stamp the block MRU at issue time: the prediction is that it is
		// about to be used, so it must not be the next LRU victim while the
		// fetch is still paying off.
		s.clock++
		blk.lastUse = s.clock
		// Register the in-flight event NOW, before the background proc gets
		// scheduled, so a touch racing the prefetch waits instead of issuing
		// a duplicate demand fetch.
		blk.inflight = s.eng.NewEvent()
		s.eng.Go(fmt.Sprintf("store/prefetch%d", b), func(p *sim.Proc) {
			s.fetch(p, b)
			s.inflightPrefetch--
			s.drainPrefetch()
		})
	}
}

// fetch reads block b from the spill device (decoding compressed topology),
// admits it, and evicts LRU blocks beyond the budget.
func (s *Store) fetch(p *sim.Proc, b int) {
	blk := &s.blocks[b]
	ev := blk.inflight
	if ev == nil {
		ev = s.eng.NewEvent()
		blk.inflight = ev
	}
	s.dev.Read(p, blk.bytes)
	if s.compressed && b < s.nTopo {
		p.Sleep(sim.Time(float64(blk.bytes) / s.decodeRate))
	}
	blk = &s.blocks[b] // re-resolve: the slice never moves, but be explicit
	blk.inflight = nil
	blk.resident = true
	s.resident += blk.bytes
	ev.Trigger()
	s.evict(b)
	s.emitCounter(p)
}

// evict drops least-recently-used resident blocks (never the one just
// admitted, never in-flight ones) until the cache fits its budget.
func (s *Store) evict(keep int) {
	for s.resident > s.cfg.CacheBytes {
		victim := -1
		for i := range s.blocks {
			if i == keep || !s.blocks[i].resident || s.blocks[i].inflight != nil {
				continue
			}
			if victim < 0 || s.blocks[i].lastUse < s.blocks[victim].lastUse {
				victim = i
			}
		}
		if victim < 0 {
			return // only the kept block is resident; allow transient overrun
		}
		s.blocks[victim].resident = false
		s.blocks[victim].viaPrefetch = false
		s.resident -= s.blocks[victim].bytes
	}
}

// emitCounter records the tier's headline counters as a trace counter event.
func (s *Store) emitCounter(p *sim.Proc) {
	if s.cfg.Tracer == nil {
		return
	}
	s.cfg.Tracer.Counter("store", s.cfg.TracePid, float64(p.Now()), map[string]float64{
		"resident_mb":    float64(s.resident) / (1 << 20),
		"hits":           float64(s.stats.Hits),
		"misses":         float64(s.stats.Misses),
		"prefetch_used":  float64(s.stats.PrefetchUsed),
		"prefetch_total": float64(s.stats.PrefetchIssued),
	})
}
