package hw

import "repro/internal/sim"

// NetworkSpec describes the inter-machine interconnect of a cluster.
type NetworkSpec struct {
	// Bandwidth is per-NIC bytes/second per direction (100 Gb/s InfiniBand
	// EDR: 12.5 GB/s).
	Bandwidth float64
	// Latency is the per-message cost.
	Latency float64
}

// InfiniBandEDR returns the default cluster interconnect spec.
func InfiniBandEDR() NetworkSpec {
	return NetworkSpec{Bandwidth: 12.5e9, Latency: 2e-6}
}

// Network is the runtime inter-machine fabric: one FCFS server per NIC
// direction pair, plus byte accounting.
type Network struct {
	Spec NetworkSpec
	// Bytes counts wire traffic per traffic class.
	Bytes [numTrafficClasses]int64

	nics []*sim.Resource // one per machine (send side serializes)
}

// NewNetwork creates the fabric for machines NICs.
func NewNetwork(eng *sim.Engine, machines int, spec NetworkSpec) *Network {
	n := &Network{Spec: spec}
	for i := 0; i < machines; i++ {
		n.nics = append(n.nics, eng.NewResource(1))
	}
	return n
}

// Send moves bytes from machine src to machine dst, serialising on the
// sender's NIC (receive-side contention is folded into the same budget).
func (n *Network) Send(p *sim.Proc, src, dst int, bytes int64, class TrafficClass) {
	if src == dst || bytes <= 0 {
		return
	}
	dur := sim.Time(float64(bytes)/n.Spec.Bandwidth) + sim.Time(n.Spec.Latency)
	n.nics[src].Use(p, 1, dur)
	n.Bytes[class] += bytes
}

// Cluster is a group of identical machines joined by a Network, sharing one
// simulation engine.
type Cluster struct {
	Eng      *sim.Engine
	Machines []*Machine
	Net      *Network
}

// NewCluster builds machines x gpusEach DGX-1-class servers on one engine.
func NewCluster(machines, gpusEach int, gpu GPUSpec, cpu CPUSpec, net NetworkSpec, latencyDiv float64) *Cluster {
	eng := sim.NewEngine()
	c := &Cluster{Eng: eng}
	if latencyDiv > 1 {
		net.Latency /= latencyDiv
	}
	c.Net = NewNetwork(eng, machines, net)
	for i := 0; i < machines; i++ {
		c.Machines = append(c.Machines, NewMachineOn(eng, gpusEach, gpu, cpu, latencyDiv))
	}
	return c
}

// TotalGPUs returns the cluster-wide GPU count.
func (c *Cluster) TotalGPUs() int {
	t := 0
	for _, m := range c.Machines {
		t += len(m.GPUs)
	}
	return t
}
