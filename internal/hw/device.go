package hw

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Device is a simulated GPU at runtime: a thread pool (so concurrent kernels
// from pipelined workers genuinely co-run when threads are available), a
// device-memory budget, and busy-time accounting for utilization reports.
type Device struct {
	ID   int
	Spec GPUSpec
	// Tracer, when set, records kernel and transfer spans (virtual time).
	Tracer *trace.Tracer

	eng     *sim.Engine
	threads *sim.Resource
	memUsed int64

	// Busy-time accounting: the integral of "at least one kernel resident",
	// which is what nvidia-smi style GPU utilization measures.
	active    int
	busySince sim.Time
	busyTotal sim.Time
	mallocs   int64
}

// NewDevice creates a simulated GPU.
func NewDevice(eng *sim.Engine, id int, spec GPUSpec) *Device {
	return &Device{ID: id, Spec: spec, eng: eng, threads: eng.NewResource(spec.Threads)}
}

// beginBusy/endBusy bracket any period during which a kernel is resident.
func (d *Device) beginBusy() {
	if d.active == 0 {
		d.busySince = d.eng.Now()
	}
	d.active++
}

func (d *Device) endBusy() {
	d.active--
	if d.active == 0 {
		d.busyTotal += d.eng.Now() - d.busySince
	}
}

// BusyTime returns the accumulated busy time. Call it only when no kernel is
// resident (e.g., after Engine.Run completes).
func (d *Device) BusyTime() sim.Time {
	if d.active != 0 {
		panic("hw: BusyTime read while kernels are resident")
	}
	return d.busyTotal
}

// BusyAt returns the busy time accumulated up to now, safe to call while
// kernels are resident: the telemetry scraper reads it mid-run to derive
// per-interval busy fractions.
func (d *Device) BusyAt(now sim.Time) sim.Time {
	if d.active > 0 {
		return d.busyTotal + (now - d.busySince)
	}
	return d.busyTotal
}

// ResetBusy zeroes the busy-time accumulator (for measurement windows that
// exclude warm-up).
func (d *Device) ResetBusy() {
	d.busyTotal = 0
	if d.active > 0 {
		d.busySince = d.eng.Now()
	}
}

// Seize occupies the device's entire thread pool for dur virtual seconds,
// modelling a transient stall (ECC scrub, thermal throttle, preempting
// tenant): queued kernels finish first (FIFO), then every new kernel waits
// behind the seizure. The stalled period does NOT count as busy time, so a
// straggler shows up as a utilization dip.
func (d *Device) Seize(p *sim.Proc, dur sim.Time) {
	d.threads.Acquire(p, d.Spec.Threads)
	p.Sleep(dur)
	d.threads.Release(d.Spec.Threads)
}

// RunKernel executes a kernel of the given kind over items work units using
// the kind's ideal thread allocation. It blocks in virtual time for the
// kernel duration and contends for device threads with concurrent kernels.
func (d *Device) RunKernel(p *sim.Proc, kind KernelKind, items int64) {
	d.RunKernelThreads(p, kind, items, d.Spec.IdealThreads(kind, items))
}

// RunKernelThreads is RunKernel with an explicit thread allocation (used by
// the Figure 2 thread-scaling sweep). The launch overhead elapses BEFORE the
// kernel occupies the device — it is host/driver time during which the GPU
// sits idle, which is what makes light kernels unable to keep utilization
// up (the paper's motivation for pipelining).
func (d *Device) RunKernelThreads(p *sim.Proc, kind KernelKind, items int64, threads int) {
	if threads > d.Spec.Threads {
		threads = d.Spec.Threads
	}
	if threads < 1 {
		threads = 1
	}
	dur := d.Spec.KernelDuration(kind, items, threads) - d.Spec.KernelLaunch
	p.Sleep(d.Spec.KernelLaunch)
	d.threads.Acquire(p, threads)
	d.beginBusy()
	start := d.eng.Now()
	p.Sleep(dur)
	d.endBusy()
	d.threads.Release(threads)
	d.Tracer.Complete(kernelName(kind), "kernel", d.ID, trace.LaneKernels,
		float64(start), float64(d.eng.Now()),
		map[string]string{"items": fmt.Sprint(items), "threads": fmt.Sprint(threads)})
}

func kernelName(kind KernelKind) string {
	switch kind {
	case KernelSample:
		return "sample"
	case KernelGather:
		return "gather"
	case KernelCompute:
		return "compute"
	default:
		return "comm"
	}
}

// Transfer is an NVLink transfer initiated by this GPU; the communication
// kernel occupies a small thread allocation for its duration and counts as
// busy time (NCCL kernels are resident kernels).
func (d *Device) Transfer(p *sim.Proc, f *Fabric, dst int, bytes int64, class TrafficClass) {
	if dst == d.ID || bytes <= 0 {
		return
	}
	const commThreads = 256
	d.threads.Acquire(p, commThreads)
	d.beginBusy()
	start := d.eng.Now()
	f.Transfer(p, d.ID, dst, bytes, class)
	d.endBusy()
	d.threads.Release(commThreads)
	d.Tracer.Complete(fmt.Sprintf("nvlink->%d", dst), "comm", d.ID, trace.LaneNVLink,
		float64(start), float64(d.eng.Now()),
		map[string]string{"bytes": fmt.Sprint(bytes), "class": class.String()})
}

// UVARead is a zero-copy host read initiated by this GPU (busy: the reading
// kernel is resident while PCIe requests are in flight).
func (d *Device) UVARead(p *sim.Proc, f *Fabric, items int64, itemBytes int, class TrafficClass) {
	if items <= 0 {
		return
	}
	const commThreads = 256
	d.threads.Acquire(p, commThreads)
	d.beginBusy()
	start := d.eng.Now()
	f.UVARead(p, d.ID, items, itemBytes, class)
	d.endBusy()
	d.threads.Release(commThreads)
	d.Tracer.Complete("uva", "comm", d.ID, trace.LaneUVA,
		float64(start), float64(d.eng.Now()),
		map[string]string{"items": fmt.Sprint(items), "class": class.String()})
}

// Malloc models a cudaMalloc/cudaFree pair. Systems with caching allocators
// (DSP, DGL-UVA) never call it; Quiver pays it per sampling allocation.
func (d *Device) Malloc(p *sim.Proc) {
	d.mallocs++
	p.Sleep(d.Spec.MallocOverhead)
}

// Mallocs returns the number of Malloc calls (for profiling assertions).
func (d *Device) Mallocs() int64 { return d.mallocs }

// Reserve claims device memory, failing if the budget is exceeded. The data
// layout code uses it to enforce that topology patches and feature caches
// fit in the (scaled) 16 GB budget.
func (d *Device) Reserve(bytes int64) error {
	if d.memUsed+bytes > d.Spec.MemBytes {
		return fmt.Errorf("hw: GPU %d out of memory: used %d + %d > %d",
			d.ID, d.memUsed, bytes, d.Spec.MemBytes)
	}
	d.memUsed += bytes
	return nil
}

// MemUsed returns reserved device memory in bytes.
func (d *Device) MemUsed() int64 { return d.memUsed }

// MemFree returns the remaining device memory budget in bytes.
func (d *Device) MemFree() int64 { return d.Spec.MemBytes - d.memUsed }

// Host is the simulated CPU: a core pool shared by all CPU-side sampling
// workers, which is what makes the CPU-sampling baselines stop scaling.
type Host struct {
	Spec  CPUSpec
	cores *sim.Resource
}

// NewHost creates the simulated host CPU.
func NewHost(eng *sim.Engine, spec CPUSpec) *Host {
	return &Host{Spec: spec, cores: eng.NewResource(spec.Cores)}
}

// Sample runs a CPU sampling task that draws items neighbour samples using
// up to cores cores (FCFS contention with other workers).
func (h *Host) Sample(p *sim.Proc, items int64, cores int) {
	if items <= 0 {
		return
	}
	if cores < 1 {
		cores = 1
	}
	if cores > h.Spec.Cores {
		cores = h.Spec.Cores
	}
	dur := sim.Time(float64(items) / (h.Spec.SampleRate * float64(cores)))
	h.cores.Use(p, cores, dur)
}

// Gather runs a CPU feature-copy task of bytes using up to cores cores.
func (h *Host) Gather(p *sim.Proc, bytes int64, cores int) {
	if bytes <= 0 {
		return
	}
	if cores < 1 {
		cores = 1
	}
	if cores > h.Spec.Cores {
		cores = h.Spec.Cores
	}
	dur := sim.Time(float64(bytes) / (h.Spec.GatherRate * float64(cores)))
	h.cores.Use(p, cores, dur)
}

// Machine bundles the full simulated server: engine-bound devices, host and
// fabric. It is the root object systems are built on.
type Machine struct {
	Eng    *sim.Engine
	GPUs   []*Device
	Host   *Host
	Fabric *Fabric
}

// SetTracer attaches an event tracer to every device (nil detaches) and
// labels the trace lanes.
func (m *Machine) SetTracer(t *trace.Tracer) {
	for _, d := range m.GPUs {
		d.Tracer = t
		t.NamePid(d.ID, fmt.Sprintf("GPU %d", d.ID))
		t.NameLane(d.ID, trace.LaneKernels, "kernels")
		t.NameLane(d.ID, trace.LaneNVLink, "nvlink")
		t.NameLane(d.ID, trace.LaneUVA, "uva")
		t.NameLane(d.ID, trace.LaneSampler, "sampler stage")
		t.NameLane(d.ID, trace.LaneLoader, "loader stage")
		t.NameLane(d.ID, trace.LaneTrainer, "trainer stage")
		t.NameLane(d.ID, trace.LaneCCC, "ccc wait")
	}
}

// NewMachine builds an n-GPU DGX-1-class server on a fresh engine.
func NewMachine(n int, gpu GPUSpec, cpu CPUSpec) *Machine {
	return NewMachineScaled(n, gpu, cpu, 1)
}

// NewMachineScaled is NewMachine with per-message link latencies divided by
// latencyDiv. The benchmark harness runs datasets with ~25x fewer batches
// than the paper's testbed, so per-batch fixed costs (latencies, kernel
// launches) are divided by the same factor to preserve their relative
// weight (see internal/bench).
func NewMachineScaled(n int, gpu GPUSpec, cpu CPUSpec, latencyDiv float64) *Machine {
	return NewMachineOn(sim.NewEngine(), n, gpu, cpu, latencyDiv)
}

// NewMachineOn builds a machine on an existing engine, so several machines
// can share one simulation (the multi-machine cluster mode).
func NewMachineOn(eng *sim.Engine, n int, gpu GPUSpec, cpu CPUSpec, latencyDiv float64) *Machine {
	if latencyDiv < 1 {
		latencyDiv = 1
	}
	topo := DGX1(n)
	topo.PCIeLatency /= latencyDiv
	for i := range topo.Links {
		topo.Links[i].Latency /= latencyDiv
	}
	m := &Machine{
		Eng:    eng,
		Host:   NewHost(eng, cpu),
		Fabric: NewFabric(eng, topo),
	}
	for i := 0; i < n; i++ {
		m.GPUs = append(m.GPUs, NewDevice(eng, i, gpu))
	}
	return m
}

// Utilization returns each GPU's busy fraction of the window [start, end].
func (m *Machine) Utilization(start, end sim.Time) []float64 {
	out := make([]float64, len(m.GPUs))
	window := float64(end - start)
	if window <= 0 {
		return out
	}
	for i, d := range m.GPUs {
		out[i] = float64(d.BusyTime()) / window
	}
	return out
}
