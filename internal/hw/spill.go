package hw

import "repro/internal/sim"

// SpillSpec describes the simulated device backing the out-of-core graph
// tier below host memory — an NVMe SSD (or a slower disk) the block store
// spills topology and feature blocks to when they exceed the host cache
// budget.
type SpillSpec struct {
	Name string
	// Bandwidth is sustained sequential read bandwidth in bytes/second.
	Bandwidth float64
	// Latency is the fixed per-read cost (submission + device access).
	Latency sim.Time
	// QueueDepth bounds concurrent in-flight reads; further requests queue
	// FCFS on the device.
	QueueDepth int
}

// NVMeSpill is the default spill device: a datacenter NVMe SSD (~3.2 GB/s
// sustained reads, ~80 µs access, queue depth 8).
func NVMeSpill() SpillSpec {
	return SpillSpec{Name: "nvme", Bandwidth: 3.2e9, Latency: 80e-6, QueueDepth: 8}
}

// SpillDevice is a SpillSpec instantiated on an engine: reads occupy one of
// QueueDepth channels for latency + bytes/bandwidth, and counters accumulate
// for the run report.
type SpillDevice struct {
	Spec SpillSpec
	res  *sim.Resource

	// Reads and BytesRead accumulate over the device lifetime.
	Reads     int64
	BytesRead int64
}

// NewSpillDevice instantiates the device. latencyScale divides the fixed
// per-read cost the same way the fabric scales link latencies for shrunk
// benchmark runs (<=1 keeps the spec value); bandwidth is never scaled —
// block bytes are real.
func NewSpillDevice(eng *sim.Engine, spec SpillSpec, latencyScale float64) *SpillDevice {
	if spec.Bandwidth <= 0 {
		spec = NVMeSpill()
	}
	if spec.QueueDepth < 1 {
		spec.QueueDepth = 1
	}
	if latencyScale > 1 {
		spec.Latency /= sim.Time(latencyScale)
	}
	return &SpillDevice{Spec: spec, res: eng.NewResource(spec.QueueDepth)}
}

// Read charges one block read of the given size, queueing on the device
// when all channels are busy.
func (sd *SpillDevice) Read(p *sim.Proc, bytes int64) {
	if bytes <= 0 {
		return
	}
	sd.Reads++
	sd.BytesRead += bytes
	sd.res.Use(p, 1, sd.Spec.Latency+sim.Time(float64(bytes)/sd.Spec.Bandwidth))
}
