// Package hw models the hardware substrate of a multi-GPU server — GPUs,
// CPU, NVLink mesh, PCIe switches and host memory — as deterministic cost
// models layered on the sim package's discrete-event kernel.
//
// The paper's testbed is an AWS p3.16xlarge (DGX-1-class): 8 V100 GPUs with
// 16 GB memory and 5120 physical threads each, joined by an NVLink hybrid
// cube mesh, with pairs of GPUs sharing PCIe switches to a 64-core host.
// Every element here is calibrated so the aggregate link bandwidths match
// Table 1 of the paper and the kernel thread-scaling curves match Figure 2.
package hw

import "repro/internal/sim"

// GPUSpec describes a simulated GPU.
type GPUSpec struct {
	// Threads is the number of physical threads (V100: 80 SMs x 64 = 5120).
	Threads int
	// MemBytes is the device memory capacity available to the runtime.
	MemBytes int64
	// MemBandwidth is HBM bandwidth in bytes/second (V100: ~900 GB/s).
	MemBandwidth float64
	// ClockHz is the per-thread op issue rate (~1 op/cycle/thread).
	ClockHz float64
	// KernelLaunch is the fixed host-side cost of launching one kernel.
	KernelLaunch sim.Time
	// MallocOverhead is the cost of one cudaMalloc/cudaFree pair. DSP and
	// DGL-UVA use a caching allocator (cost ~0); Quiver pays this per
	// allocation, which the paper identifies as its main sampling overhead.
	MallocOverhead sim.Time
}

// CPUSpec describes the simulated host CPU.
type CPUSpec struct {
	// Cores available to sampling workers (Xeon E5-2686: 64).
	Cores int
	// SampleRate is sampled-neighbors/second/core for CPU graph sampling.
	SampleRate float64
	// GatherRate is feature bytes/second/core for CPU-side feature copies.
	GatherRate float64
}

// V100 returns the default GPU spec used throughout the experiments.
// MemBytes is intentionally left to the dataset registry, which scales GPU
// memory by the same factor as the graphs so cache-pressure regimes match
// the paper (see internal/bench).
func V100() GPUSpec {
	return GPUSpec{
		Threads:        5120,
		MemBytes:       16 << 30,
		MemBandwidth:   900e9,
		ClockHz:        1.38e9,
		KernelLaunch:   5e-6,
		MallocOverhead: 150e-6,
	}
}

// XeonE5 returns the default host CPU spec.
func XeonE5() CPUSpec {
	return CPUSpec{
		Cores:      64,
		SampleRate: 2.5e6,
		// Random feature-row gather is cache-hostile: ~0.35 GB/s per core,
		// saturating around 22 GB/s across the socket.
		GatherRate: 0.35e9,
	}
}

// KernelKind selects the cost profile of a simulated GPU kernel.
type KernelKind int

const (
	// KernelSample draws neighbour samples from CSR adjacency lists:
	// few ops per item but heavily memory-bound random access.
	KernelSample KernelKind = iota
	// KernelGather copies feature vectors (items = rows, wide contiguous
	// reads): bandwidth-bound.
	KernelGather
	// KernelCompute performs dense math (GEMM etc.); items = FLOPs.
	KernelCompute
	// KernelComm is the on-GPU side of a communication kernel: it occupies
	// few threads (the paper notes NVLink saturates with a small thread
	// count) while the fabric transfer proceeds.
	KernelComm
	// KernelDecode expands varint-compressed adjacency bytes (items = encoded
	// bytes): sequential within a node's list but parallel across nodes,
	// reaching ~50 GB/s effective — FastSample-style cheap decode.
	KernelDecode
)

// kernelProfile captures the cost model of one kernel kind.
//
// Duration = launch + max(items*opsPerItem / (threads*ClockHz*opEff),
//
//	items*bytesPerItem / effectiveMemBW)
//
// The first term scales with allocated threads; the second is the
// memory-bound floor that makes Figure 2's curves plateau before all 5120
// threads are used.
type kernelProfile struct {
	opsPerItem   float64
	bytesPerItem float64
	opEff        float64 // fraction of peak issue rate achieved
	memEff       float64 // fraction of peak HBM bandwidth achieved
	maxThreads   int     // 0 = no cap
}

// The profiles below are fitted to observed V100 throughputs rather than
// microarchitectural truth: GPU neighbour sampling plateaus near 90 M
// sampled edges/s around ~2000 threads (opsPerItem is the *effective*
// serialized thread-cycles per item, absorbing RNG, binary search, atomics
// and divergence); feature gathers reach ~300 GB/s effective; GEMM reaches
// ~10 TFLOP/s and keeps scaling to the full device.
func profileFor(kind KernelKind) kernelProfile {
	switch kind {
	case KernelSample:
		// Plateau: 1024/(900e9*0.1) = 11.4 ns/item (~88 M items/s);
		// crossover at ~1900 threads.
		return kernelProfile{opsPerItem: 15000, bytesPerItem: 1024, opEff: 0.5, memEff: 0.1}
	case KernelGather:
		// Plateau: ~300 GB/s effective; ~7 effective thread-cycles per
		// byte (index lookup + copy) puts the crossover at ~1500 threads.
		return kernelProfile{opsPerItem: 7.0, bytesPerItem: 1, opEff: 1.0, memEff: 0.33}
	case KernelCompute:
		// items are FLOPs; 2 FLOPs/thread-cycle via FMA at 70% of peak
		// gives ~9.9 TFLOP/s with all 5120 threads.
		return kernelProfile{opsPerItem: 0.5, bytesPerItem: 0.05, opEff: 0.7, memEff: 0.6}
	case KernelComm:
		// Communication kernels need few threads to saturate a link.
		return kernelProfile{opsPerItem: 1, bytesPerItem: 0, opEff: 1.0, memEff: 1.0, maxThreads: 256}
	case KernelDecode:
		// Plateau: 1/(900e9*0.055) ≈ 50 GB/s of encoded bytes; ~6 effective
		// thread-cycles per byte puts the crossover near 220 threads.
		return kernelProfile{opsPerItem: 6, bytesPerItem: 1, opEff: 1.0, memEff: 0.055}
	default:
		panic("hw: unknown kernel kind")
	}
}

// KernelDuration returns the execution time of a kernel of the given kind
// processing items work units with the given number of allocated threads.
// It is exposed so the Figure 2 experiment can sweep thread counts directly.
func (g GPUSpec) KernelDuration(kind KernelKind, items int64, threads int) sim.Time {
	if items <= 0 {
		return g.KernelLaunch
	}
	if threads <= 0 {
		threads = 1
	}
	pr := profileFor(kind)
	if pr.maxThreads > 0 && threads > pr.maxThreads {
		threads = pr.maxThreads
	}
	if threads > g.Threads {
		threads = g.Threads
	}
	compute := float64(items) * pr.opsPerItem / (float64(threads) * g.ClockHz * pr.opEff)
	memory := float64(items) * pr.bytesPerItem / (g.MemBandwidth * pr.memEff)
	d := compute
	if memory > d {
		d = memory
	}
	return g.KernelLaunch + sim.Time(d)
}

// IdealThreads returns the thread allocation a kernel of this kind and size
// would request: enough to reach the memory-bound floor, rounded up to warp
// granularity and capped at the device width.
func (g GPUSpec) IdealThreads(kind KernelKind, items int64) int {
	pr := profileFor(kind)
	memory := float64(items) * pr.bytesPerItem / (g.MemBandwidth * pr.memEff)
	var threads int
	if memory <= 0 {
		threads = g.Threads
	} else {
		// Smallest thread count whose compute time is below the floor.
		need := float64(items) * pr.opsPerItem / (g.ClockHz * pr.opEff * memory)
		threads = int(need) + 1
	}
	if pr.maxThreads > 0 && threads > pr.maxThreads {
		threads = pr.maxThreads
	}
	if threads > g.Threads {
		threads = g.Threads
	}
	// Round up to a warp.
	if rem := threads % 32; rem != 0 {
		threads += 32 - rem
	}
	if threads > g.Threads {
		threads = g.Threads
	}
	if threads < 32 {
		threads = 32
	}
	return threads
}
