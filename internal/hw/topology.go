package hw

import "fmt"

// LinkType classifies a fabric edge for routing and byte accounting.
type LinkType int

const (
	// NVLinkLink is a direct GPU-GPU NVLink connection.
	NVLinkLink LinkType = iota
	// PCIeLink is a GPU's path to host memory through its PCIe switch.
	PCIeLink
)

// Link is a physical connection in the server topology.
type Link struct {
	Type LinkType
	// A, B are GPU ids for NVLink; for PCIe, A is the switch id and B is -1.
	A, B int
	// Lanes is the number of parallel NVLink connections bonded between
	// the pair (the DGX-1 mesh doubles some edges).
	Lanes int
	// Bandwidth is bytes/second per lane (one direction).
	Bandwidth float64
	// Latency is the per-message propagation cost.
	Latency float64 // seconds
}

// Topology is a static description of the server fabric.
type Topology struct {
	NumGPUs int
	// Links holds NVLink edges. Index into it via nvIndex.
	Links []Link
	// SwitchOf maps each GPU to its PCIe switch.
	SwitchOf []int
	// NumSwitches is the PCIe switch count.
	NumSwitches int
	// PCIeBandwidth is bytes/second of one switch's host uplink, shared by
	// the GPUs behind it.
	PCIeBandwidth float64
	// PCIeLatency is the per-message PCIe cost.
	PCIeLatency float64
	// nvIndex[a][b] is the index into Links of the a-b NVLink, or -1.
	nvIndex [][]int
	// nextHop[a][b] is the next GPU on the (possibly multi-hop) NVLink
	// route from a to b, or -1 if unreachable.
	nextHop [][]int
}

// NVLink bandwidth per lane per direction for NVLink 2.0 (V100): 25 GB/s.
const nvlinkLaneBandwidth = 25e9

// DGX1 builds the hybrid-cube-mesh topology of an 8-GPU DGX-1/p3.16xlarge
// restricted to the first n GPUs (1 <= n <= 8). Aggregate bandwidths match
// Table 1 of the paper: PCIe 32/32/64/128 GB/s and NVLink 0/100/400/1200
// GB/s for 1/2/4/8 GPUs.
func DGX1(n int) *Topology {
	if n < 1 || n > 8 {
		panic(fmt.Sprintf("hw: DGX1 supports 1-8 GPUs, got %d", n))
	}
	// Lane counts of the DGX-1V hybrid cube mesh. Each GPU has 6 lanes:
	// quad {0,1,2,3}: 0-1 x2, 2-3 x2, 0-2, 0-3, 1-2, 1-3 (8 lanes)
	// quad {4,5,6,7}: mirrored (8 lanes)
	// cross links 0-4, 1-5, 2-6, 3-7 x2 each (8 lanes) => 24 lanes total.
	type edge struct{ a, b, lanes int }
	full := []edge{
		{0, 1, 2}, {2, 3, 2}, {0, 2, 1}, {0, 3, 1}, {1, 2, 1}, {1, 3, 1},
		{4, 5, 2}, {6, 7, 2}, {4, 6, 1}, {4, 7, 1}, {5, 6, 1}, {5, 7, 1},
		{0, 4, 2}, {1, 5, 2}, {2, 6, 2}, {3, 7, 2},
	}
	t := &Topology{
		NumGPUs:       n,
		NumSwitches:   4,
		PCIeBandwidth: 32e9,
		PCIeLatency:   5e-6,
		SwitchOf:      make([]int, n),
	}
	for g := 0; g < n; g++ {
		t.SwitchOf[g] = g / 2
	}
	for _, e := range full {
		if e.a < n && e.b < n {
			t.Links = append(t.Links, Link{
				Type: NVLinkLink, A: e.a, B: e.b, Lanes: e.lanes,
				Bandwidth: nvlinkLaneBandwidth, Latency: 1.5e-6,
			})
		}
	}
	t.buildRouting()
	return t
}

// buildRouting precomputes NVLink indices and BFS next-hop tables with a
// deterministic tie-break (lower-numbered neighbour first).
func (t *Topology) buildRouting() {
	n := t.NumGPUs
	t.nvIndex = make([][]int, n)
	adj := make([][]int, n)
	for i := range t.nvIndex {
		t.nvIndex[i] = make([]int, n)
		for j := range t.nvIndex[i] {
			t.nvIndex[i][j] = -1
		}
	}
	for i, l := range t.Links {
		t.nvIndex[l.A][l.B] = i
		t.nvIndex[l.B][l.A] = i
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for i := range adj {
		sortInts(adj[i])
	}
	t.nextHop = make([][]int, n)
	for src := 0; src < n; src++ {
		t.nextHop[src] = make([]int, n)
		dist := make([]int, n)
		for i := range dist {
			t.nextHop[src][i] = -1
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		parent := make([]int, n)
		parent[src] = src
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		for dst := 0; dst < n; dst++ {
			if dst == src || dist[dst] < 0 {
				continue
			}
			// Walk back from dst to find the first hop out of src.
			hop := dst
			for parent[hop] != src {
				hop = parent[hop]
			}
			t.nextHop[src][dst] = hop
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NVLinkIndex returns the Links index of the direct a-b NVLink, or -1.
func (t *Topology) NVLinkIndex(a, b int) int {
	if a == b {
		return -1
	}
	return t.nvIndex[a][b]
}

// Route returns the sequence of GPUs on the NVLink path from src to dst
// (excluding src, including dst), or nil if no NVLink path exists.
func (t *Topology) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	var path []int
	cur := src
	for cur != dst {
		next := t.nextHop[cur][dst]
		if next < 0 {
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// AggregateNVLinkBandwidth returns the total bidirectional NVLink bandwidth
// in bytes/second across all links (the Table 1 accounting: lanes x 25 GB/s
// x 2 directions).
func (t *Topology) AggregateNVLinkBandwidth() float64 {
	var total float64
	for _, l := range t.Links {
		total += float64(l.Lanes) * l.Bandwidth * 2
	}
	return total
}

// AggregatePCIeBandwidth returns the total host-uplink PCIe bandwidth of the
// switches that have at least one of the first NumGPUs GPUs behind them.
func (t *Topology) AggregatePCIeBandwidth() float64 {
	used := map[int]bool{}
	for _, sw := range t.SwitchOf {
		used[sw] = true
	}
	return float64(len(used)) * t.PCIeBandwidth
}
