package hw

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestTable1AggregateBandwidths(t *testing.T) {
	// Paper Table 1 (GB/s): PCIe 32/32/64/128, NVLink 0/100/400/1200.
	want := []struct {
		gpus   int
		pcie   float64
		nvlink float64
	}{
		{1, 32e9, 0},
		{2, 32e9, 100e9},
		{4, 64e9, 400e9},
		{8, 128e9, 1200e9},
	}
	for _, w := range want {
		topo := DGX1(w.gpus)
		if got := topo.AggregatePCIeBandwidth(); got != w.pcie {
			t.Errorf("%d GPUs: PCIe %g, want %g", w.gpus, got, w.pcie)
		}
		if got := topo.AggregateNVLinkBandwidth(); got != w.nvlink {
			t.Errorf("%d GPUs: NVLink %g, want %g", w.gpus, got, w.nvlink)
		}
	}
}

func TestDGX1LaneCounts(t *testing.T) {
	topo := DGX1(8)
	lanesPerGPU := make([]int, 8)
	for _, l := range topo.Links {
		lanesPerGPU[l.A] += l.Lanes
		lanesPerGPU[l.B] += l.Lanes
	}
	for g, lanes := range lanesPerGPU {
		if lanes != 6 {
			t.Errorf("GPU %d has %d NVLink lanes, want 6 (V100)", g, lanes)
		}
	}
}

func TestDGX1InvalidSize(t *testing.T) {
	for _, n := range []int{0, 9, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DGX1(%d) did not panic", n)
				}
			}()
			DGX1(n)
		}()
	}
}

func TestRoutingDirectAndMultiHop(t *testing.T) {
	topo := DGX1(8)
	// Direct link.
	if r := topo.Route(0, 1); len(r) != 1 || r[0] != 1 {
		t.Errorf("route 0->1 = %v, want [1]", r)
	}
	// 0 and 5 have no direct link on the cube mesh: must relay via 1 or 4.
	if topo.NVLinkIndex(0, 5) != -1 {
		t.Fatal("test premise wrong: 0-5 should have no direct link")
	}
	r := topo.Route(0, 5)
	if len(r) != 2 || r[len(r)-1] != 5 {
		t.Errorf("route 0->5 = %v, want 2 hops ending at 5", r)
	}
	// All pairs reachable.
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if a != b && topo.Route(a, b) == nil {
				t.Errorf("no route %d->%d", a, b)
			}
		}
	}
	// Self route is nil.
	if topo.Route(3, 3) != nil {
		t.Error("self route should be nil")
	}
}

func TestRoutingDeterministic(t *testing.T) {
	a, b := DGX1(8), DGX1(8)
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			ra, rb := a.Route(x, y), b.Route(x, y)
			if len(ra) != len(rb) {
				t.Fatalf("route %d->%d differs across builds", x, y)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("route %d->%d differs across builds", x, y)
				}
			}
		}
	}
}

func TestUVAWireBytes(t *testing.T) {
	// 4-byte reads (one adjacency entry): 1 request of 50 wire bytes each.
	if got := UVAWireBytes(10, 4); got != 500 {
		t.Errorf("UVAWireBytes(10,4)=%d, want 500", got)
	}
	// 512-byte feature row: 16 requests x 50 = 800 wire bytes.
	if got := UVAWireBytes(1, 512); got != 800 {
		t.Errorf("UVAWireBytes(1,512)=%d, want 800", got)
	}
	// Amplification factor for small reads is large (50/4 = 12.5x).
	amp := float64(UVAWireBytes(1000, 4)) / (1000 * 4)
	if amp < 10 {
		t.Errorf("small-read amplification %.1fx, want >10x", amp)
	}
	if UVAWireBytes(0, 4) != 0 || UVAWireBytes(5, 0) != 0 {
		t.Error("degenerate UVAWireBytes not zero")
	}
}

func TestKernelDurationThreadScalingPlateaus(t *testing.T) {
	// Figure 2: kernel time falls with threads, then plateaus before all
	// 5120 threads are used (memory-bound floor).
	spec := V100()
	const items = 200000
	t64 := spec.KernelDuration(KernelSample, items, 64)
	t1024 := spec.KernelDuration(KernelSample, items, 1024)
	t4096 := spec.KernelDuration(KernelSample, items, 4096)
	t5120 := spec.KernelDuration(KernelSample, items, 5120)
	if !(t64 > t1024) {
		t.Errorf("no speedup 64->1024 threads: %g vs %g", t64, t1024)
	}
	if rel := math.Abs(float64(t5120-t4096)) / float64(t4096); rel > 0.02 {
		t.Errorf("sample kernel still scaling at 4096->5120 threads (%.1f%%), want plateau", rel*100)
	}
	// Gather (feature loading) plateaus too (crossover ~1500 threads).
	g2048 := spec.KernelDuration(KernelGather, 50<<20, 2048)
	g5120 := spec.KernelDuration(KernelGather, 50<<20, 5120)
	if rel := math.Abs(float64(g5120-g2048)) / float64(g2048); rel > 0.05 {
		t.Errorf("gather kernel still scaling past 2048 threads: %g vs %g", g2048, g5120)
	}
}

func TestKernelDurationMonotoneInItems(t *testing.T) {
	spec := V100()
	prev := sim.Time(0)
	for _, items := range []int64{0, 1, 100, 10000, 1000000} {
		d := spec.KernelDuration(KernelCompute, items, 5120)
		if d < prev {
			t.Fatalf("duration decreased with more work: %g after %g", d, prev)
		}
		prev = d
	}
}

func TestIdealThreadsWarpAlignedAndBounded(t *testing.T) {
	spec := V100()
	for _, items := range []int64{1, 31, 1000, 1 << 20} {
		for _, kind := range []KernelKind{KernelSample, KernelGather, KernelCompute, KernelComm} {
			th := spec.IdealThreads(kind, items)
			if th < 32 || th > spec.Threads {
				t.Errorf("IdealThreads(%v,%d)=%d out of range", kind, items, th)
			}
			if th%32 != 0 {
				t.Errorf("IdealThreads(%v,%d)=%d not warp aligned", kind, items, th)
			}
		}
	}
	// Comm kernels stay small.
	if th := spec.IdealThreads(KernelComm, 1<<30); th > 256 {
		t.Errorf("comm kernel wants %d threads, should be <=256", th)
	}
}

func TestGEMMThroughputCalibration(t *testing.T) {
	// A 10 GFLOP compute kernel should take ~1-2 ms on a V100-class model
	// (~10 TFLOP/s effective).
	spec := V100()
	d := spec.KernelDuration(KernelCompute, 10e9, spec.Threads)
	if d < 0.5e-3 || d > 5e-3 {
		t.Errorf("10 GFLOP kernel took %g s, want ~1-2 ms", d)
	}
}

func TestFabricTransferTimeAndAccounting(t *testing.T) {
	m := NewMachine(8, V100(), XeonE5())
	var dur sim.Time
	m.Eng.Go("xfer", func(p *sim.Proc) {
		start := p.Now()
		m.Fabric.Transfer(p, 0, 1, 100<<20, TrafficSample)
		dur = p.Now() - start
	})
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 100 MiB over a 2-lane 25 GB/s link: ~2.1 ms.
	want := float64(100<<20)/50e9 + 1.5e-6
	if math.Abs(float64(dur)-want)/want > 0.01 {
		t.Errorf("transfer took %g, want ~%g", dur, want)
	}
	if m.Fabric.Counters.NVLinkBytes[TrafficSample] != 100<<20 {
		t.Errorf("NVLink bytes = %d", m.Fabric.Counters.NVLinkBytes[TrafficSample])
	}
	if m.Fabric.Counters.UsefulBytes[TrafficSample] != 100<<20 {
		t.Errorf("useful bytes = %d", m.Fabric.Counters.UsefulBytes[TrafficSample])
	}
}

func TestMultiHopCountsPerHop(t *testing.T) {
	m := NewMachine(8, V100(), XeonE5())
	m.Eng.Go("xfer", func(p *sim.Proc) {
		m.Fabric.Transfer(p, 0, 5, 1<<20, TrafficFeature)
	})
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	hops := len(m.Fabric.Topo.Route(0, 5))
	if got := m.Fabric.Counters.NVLinkBytes[TrafficFeature]; got != int64(hops)<<20 {
		t.Errorf("multi-hop wire bytes = %d, want %d (x%d hops)", got, int64(hops)<<20, hops)
	}
	if got := m.Fabric.Counters.UsefulBytes[TrafficFeature]; got != 1<<20 {
		t.Errorf("useful bytes = %d, want %d", got, 1<<20)
	}
}

func TestMultiHopNVLinkFasterThanUVA(t *testing.T) {
	// The paper's observation: reading features from a remote GPU without a
	// direct link (relayed) still beats UVA reads from host memory.
	m := NewMachine(8, V100(), XeonE5())
	const rows, rowBytes = 10000, 512
	var nvDur, uvaDur sim.Time
	m.Eng.Go("nv", func(p *sim.Proc) {
		start := p.Now()
		m.Fabric.Transfer(p, 0, 5, rows*rowBytes, TrafficFeature)
		nvDur = p.Now() - start
	})
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	m2 := NewMachine(8, V100(), XeonE5())
	m2.Eng.Go("uva", func(p *sim.Proc) {
		start := p.Now()
		m2.Fabric.UVARead(p, 0, rows, rowBytes, TrafficFeature)
		uvaDur = p.Now() - start
	})
	if _, err := m2.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if nvDur >= uvaDur {
		t.Errorf("multi-hop NVLink (%g) not faster than UVA (%g)", nvDur, uvaDur)
	}
}

func TestPCIeSwitchContention(t *testing.T) {
	// GPUs 0 and 1 share a switch: concurrent UVA reads serialize. GPU 2 is
	// on another switch and proceeds in parallel.
	run := func(gpus []int) sim.Time {
		m := NewMachine(4, V100(), XeonE5())
		for _, g := range gpus {
			g := g
			m.Eng.Go("rd", func(p *sim.Proc) {
				m.Fabric.UVARead(p, g, 1<<20, 4, TrafficSample)
			})
		}
		end, err := m.Eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	solo := run([]int{0})
	shared := run([]int{0, 1})
	separate := run([]int{0, 2})
	if shared < sim.Time(1.9)*solo {
		t.Errorf("shared switch: %g, want ~2x solo %g", shared, solo)
	}
	if separate > sim.Time(1.1)*solo {
		t.Errorf("separate switches: %g, want ~solo %g", separate, solo)
	}
}

func TestDeviceBusyAccounting(t *testing.T) {
	m := NewMachine(2, V100(), XeonE5())
	d := m.GPUs[0]
	m.Eng.Go("a", func(p *sim.Proc) {
		d.RunKernel(p, KernelCompute, 1e9)
		p.Sleep(0.01) // idle gap
		d.RunKernel(p, KernelCompute, 1e9)
	})
	end, err := m.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	busy := d.BusyTime()
	if busy <= 0 || busy >= end {
		t.Fatalf("busy=%g end=%g", busy, end)
	}
	util := m.Utilization(0, end)
	if util[0] <= 0 || util[0] >= 1 {
		t.Errorf("util=%v", util)
	}
	if util[1] != 0 {
		t.Errorf("idle GPU shows util %v", util[1])
	}
}

func TestOverlappingKernelsBusyOnce(t *testing.T) {
	// Two concurrent kernels on one GPU: busy time counts wall coverage,
	// not kernel-seconds.
	m := NewMachine(1, V100(), XeonE5())
	d := m.GPUs[0]
	for i := 0; i < 2; i++ {
		m.Eng.Go("k", func(p *sim.Proc) {
			d.RunKernelThreads(p, KernelCompute, 1e9, 1024)
		})
	}
	end, err := m.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.BusyTime() > end {
		t.Fatalf("busy %g exceeds wall %g", d.BusyTime(), end)
	}
}

func TestThreadContentionSerializesWideKernels(t *testing.T) {
	// Two kernels each wanting all threads must serialize.
	m := NewMachine(1, V100(), XeonE5())
	d := m.GPUs[0]
	single := d.Spec.KernelDuration(KernelCompute, 20e9, d.Spec.Threads)
	for i := 0; i < 2; i++ {
		m.Eng.Go("k", func(p *sim.Proc) {
			d.RunKernelThreads(p, KernelCompute, 20e9, d.Spec.Threads)
		})
	}
	end, err := m.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end < sim.Time(1.9)*single {
		t.Errorf("wide kernels overlapped: end=%g, single=%g", end, single)
	}
}

func TestMallocOverhead(t *testing.T) {
	m := NewMachine(1, V100(), XeonE5())
	d := m.GPUs[0]
	m.Eng.Go("alloc", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			d.Malloc(p)
		}
	})
	end, err := m.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Time(10 * d.Spec.MallocOverhead)
	if math.Abs(float64(end-want)) > 1e-12 {
		t.Errorf("10 mallocs took %g, want %g", end, want)
	}
	if d.Mallocs() != 10 {
		t.Errorf("malloc count %d", d.Mallocs())
	}
}

func TestMemoryReserve(t *testing.T) {
	m := NewMachine(1, V100(), XeonE5())
	d := m.GPUs[0]
	if err := d.Reserve(d.Spec.MemBytes - 100); err != nil {
		t.Fatalf("reserve within budget failed: %v", err)
	}
	if err := d.Reserve(200); err == nil {
		t.Fatal("over-reserve succeeded")
	}
	if d.MemFree() != 100 {
		t.Errorf("MemFree=%d, want 100", d.MemFree())
	}
}

func TestHostCoreContention(t *testing.T) {
	// 8 workers each demanding 16 of 64 cores: two waves.
	m := NewMachine(1, V100(), XeonE5())
	for i := 0; i < 8; i++ {
		m.Eng.Go("cpu", func(p *sim.Proc) {
			m.Host.Sample(p, 1e6, 16)
		})
	}
	end, err := m.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	single := 1e6 / (m.Host.Spec.SampleRate * 16)
	if math.Abs(float64(end)-2*single)/(2*single) > 0.01 {
		t.Errorf("8x16-core tasks on 64 cores took %g, want ~%g (two waves)", end, 2*single)
	}
}

func TestUVAReadSlowerThanIdealDMA(t *testing.T) {
	// Read amplification: UVA of 4-byte items is much slower than a DMA of
	// the same payload.
	m := NewMachine(1, V100(), XeonE5())
	var uva, dma sim.Time
	m.Eng.Go("seq", func(p *sim.Proc) {
		s := p.Now()
		m.Fabric.UVARead(p, 0, 1<<20, 4, TrafficSample)
		uva = p.Now() - s
		s = p.Now()
		m.Fabric.HostDMA(p, 0, 4<<20, TrafficSample)
		dma = p.Now() - s
	})
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if uva < 10*dma {
		t.Errorf("UVA %g not >>10x DMA %g for 4-byte reads", uva, dma)
	}
}
