package hw

import (
	"fmt"

	"repro/internal/sim"
)

// TrafficClass labels transfers for byte accounting, so experiments can
// report communication volume per purpose (Figure 1, Figure 11).
type TrafficClass int

const (
	// TrafficSample is graph-sampling traffic (frontiers, adjacency data).
	TrafficSample TrafficClass = iota
	// TrafficFeature is node-feature loading traffic.
	TrafficFeature
	// TrafficGradient is model-gradient allreduce traffic.
	TrafficGradient
	// TrafficCache is feature-cache maintenance traffic: rows migrated into
	// GPU shards by the adaptive cache rebalancer (internal/cache).
	TrafficCache
	// TrafficOther is everything else (seeds, metadata).
	TrafficOther

	numTrafficClasses
)

func (c TrafficClass) String() string {
	switch c {
	case TrafficSample:
		return "sample"
	case TrafficFeature:
		return "feature"
	case TrafficGradient:
		return "gradient"
	case TrafficCache:
		return "cache"
	default:
		return "other"
	}
}

// Counters accumulates wire and payload bytes per traffic class.
type Counters struct {
	// NVLinkBytes are wire bytes moved over NVLink (relayed hops counted
	// once per hop, as the hardware would).
	NVLinkBytes [numTrafficClasses]int64
	// PCIeBytes are wire bytes over PCIe, including UVA read amplification
	// (50 bytes on the wire per 32-byte payload request).
	PCIeBytes [numTrafficClasses]int64
	// UsefulBytes are the payload bytes the caller asked for.
	UsefulBytes [numTrafficClasses]int64
}

// TotalWire returns total wire bytes for a class across both fabrics.
func (c *Counters) TotalWire(class TrafficClass) int64 {
	return c.NVLinkBytes[class] + c.PCIeBytes[class]
}

// TotalAllWire returns total wire bytes across all classes.
func (c *Counters) TotalAllWire() int64 {
	var t int64
	for i := 0; i < int(numTrafficClasses); i++ {
		t += c.NVLinkBytes[i] + c.PCIeBytes[i]
	}
	return t
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// uvaPayload and uvaRequest describe the PCIe read-amplification model from
// EMOGI: the minimum PCIe read moves 32 payload bytes plus an 18-byte packet
// header, i.e. 50 wire bytes per request.
const (
	uvaPayload = 32
	uvaRequest = 50
)

// UVAWireBytes returns the wire bytes needed to read items objects of
// itemBytes each through UVA (zero-copy) over PCIe.
func UVAWireBytes(items int64, itemBytes int) int64 {
	if items <= 0 || itemBytes <= 0 {
		return 0
	}
	reqs := int64((itemBytes + uvaPayload - 1) / uvaPayload)
	return items * reqs * uvaRequest
}

// Fabric is the runtime interconnect: one FCFS server per NVLink link and
// per PCIe switch uplink, plus byte counters. All transfer methods must be
// called from simulation processes.
type Fabric struct {
	Topo     *Topology
	Counters Counters

	eng       *sim.Engine
	linkRes   []*sim.Resource // parallel to Topo.Links
	switchRes []*sim.Resource // per PCIe switch
	linkScale []float64       // per-link bandwidth multiplier (fault injection); nil = all 1
}

// SetLinkScale sets a bandwidth multiplier for NVLink link li (1 = healthy,
// 0.25 = degraded to a quarter of nominal). Used by the fault injector to
// model link degradation; transfers already queued keep their old duration.
func (f *Fabric) SetLinkScale(li int, scale float64) {
	if scale <= 0 {
		panic("hw: link scale must be positive")
	}
	if f.linkScale == nil {
		f.linkScale = make([]float64, len(f.Topo.Links))
		for i := range f.linkScale {
			f.linkScale[i] = 1
		}
	}
	f.linkScale[li] = scale
}

func (f *Fabric) scaleOf(li int) float64 {
	if f.linkScale == nil {
		return 1
	}
	return f.linkScale[li]
}

// SeizeLink occupies NVLink link li exclusively for dur virtual seconds,
// modelling a link outage (partition): in-flight transfers finish, then all
// traffic routed over the link queues behind the outage and drains when it
// lifts. Must be called from a simulation process.
func (f *Fabric) SeizeLink(p *sim.Proc, li int, dur sim.Time) {
	f.linkRes[li].Use(p, 1, dur)
}

// NewFabric instantiates the runtime fabric for a topology on an engine.
func NewFabric(eng *sim.Engine, topo *Topology) *Fabric {
	f := &Fabric{Topo: topo, eng: eng}
	f.linkRes = make([]*sim.Resource, len(topo.Links))
	for i := range f.linkRes {
		f.linkRes[i] = eng.NewResource(1)
	}
	f.switchRes = make([]*sim.Resource, topo.NumSwitches)
	for i := range f.switchRes {
		f.switchRes[i] = eng.NewResource(1)
	}
	return f
}

// Transfer moves bytes from GPU src to GPU dst over NVLink, relaying through
// intermediate GPUs when the pair has no direct link (the paper observes
// multi-hop NVLink still beats PCIe). src == dst is free. It panics if the
// GPUs are NVLink-unreachable (cannot happen on DGX-1 with >=2 GPUs).
func (f *Fabric) Transfer(p *sim.Proc, src, dst int, bytes int64, class TrafficClass) {
	if src == dst || bytes <= 0 {
		return
	}
	path := f.Topo.Route(src, dst)
	if path == nil {
		panic(fmt.Sprintf("hw: no NVLink route %d->%d", src, dst))
	}
	cur := src
	for _, next := range path {
		li := f.Topo.NVLinkIndex(cur, next)
		l := f.Topo.Links[li]
		dur := sim.Time(float64(bytes)/(l.Bandwidth*float64(l.Lanes)*f.scaleOf(li))) + sim.Time(l.Latency)
		f.linkRes[li].Use(p, 1, dur)
		f.Counters.NVLinkBytes[class] += bytes
		cur = next
	}
	f.Counters.UsefulBytes[class] += bytes
}

// NVLinkTime returns the unloaded transfer duration src->dst for bytes, for
// cost estimation (no resource contention, no accounting).
func (f *Fabric) NVLinkTime(src, dst int, bytes int64) sim.Time {
	if src == dst || bytes <= 0 {
		return 0
	}
	path := f.Topo.Route(src, dst)
	var total sim.Time
	cur := src
	for _, next := range path {
		l := f.Topo.Links[f.Topo.NVLinkIndex(cur, next)]
		total += sim.Time(float64(bytes)/(l.Bandwidth*float64(l.Lanes))) + sim.Time(l.Latency)
		cur = next
	}
	return total
}

// uvaEfficiency is the fraction of peak PCIe bandwidth that irregular
// zero-copy reads achieve: UVA graph access is latency-bound (many
// outstanding small requests), reaching roughly a third of the streaming
// rate on V100-class systems (EMOGI reports similar gaps).
const uvaEfficiency = 0.35

// UVARead performs zero-copy reads of items objects of itemBytes each from
// host memory into GPU gpu, paying full read amplification, reduced
// effective bandwidth, and sharing the GPU's PCIe switch uplink with its
// neighbour.
func (f *Fabric) UVARead(p *sim.Proc, gpu int, items int64, itemBytes int, class TrafficClass) {
	if items <= 0 || itemBytes <= 0 {
		return
	}
	wire := UVAWireBytes(items, itemBytes)
	sw := f.Topo.SwitchOf[gpu]
	dur := sim.Time(float64(wire)/(f.Topo.PCIeBandwidth*uvaEfficiency)) + sim.Time(f.Topo.PCIeLatency)
	f.switchRes[sw].Use(p, 1, dur)
	f.Counters.PCIeBytes[class] += wire
	f.Counters.UsefulBytes[class] += items * int64(itemBytes)
}

// HostDMA performs a bulk, contiguous DMA copy of bytes between host memory
// and GPU gpu (no read amplification — used for staged copies of assembled
// mini-batches, as the CPU-sampling baselines do).
func (f *Fabric) HostDMA(p *sim.Proc, gpu int, bytes int64, class TrafficClass) {
	if bytes <= 0 {
		return
	}
	sw := f.Topo.SwitchOf[gpu]
	dur := sim.Time(float64(bytes)/f.Topo.PCIeBandwidth) + sim.Time(f.Topo.PCIeLatency)
	f.switchRes[sw].Use(p, 1, dur)
	f.Counters.PCIeBytes[class] += bytes
	f.Counters.UsefulBytes[class] += bytes
}
