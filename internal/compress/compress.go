// Package compress provides deterministic, seedable codecs for the float32
// payloads that ride the simulated fabric: model gradients (allreduce) and
// feature rows (all-to-all gathers, inter-machine NIC sends).
//
// A Codec answers two questions: how many bytes does a vector of n float32
// values occupy on the wire (WireBytes), and what values come out the far
// end (Encode then Decode). The comm package charges WireBytes for the
// timed transfers and round-trips the actual data through the codec, so a
// lossy codec degrades training accuracy for real instead of being modelled
// away by a wire-scale factor.
//
// All codecs are pure functions of (seed, input): the same seed and input
// produce bit-identical output on every rank and every run, which preserves
// the simulator's BSP guarantee that all model replicas stay equal.
package compress

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Buf is an encoded vector. Exactly one representation is populated,
// depending on the codec; N is always the logical element count.
type Buf struct {
	N int // logical float32 element count

	F32 []float32 // fp32: the values themselves (aliased, not copied)
	U16 []uint16  // fp16: IEEE half bits
	U8  []byte    // int8: quantised codes (plus Scales/Mins per chunk)
	I32 []int32   // topk: kept indices (values in F32, same length)

	// int8 per-chunk parameters, one pair per chunkSize-element chunk.
	Scales []float32
	Mins   []float32
}

// Codec encodes and decodes float32 vectors and accounts their wire size.
type Codec interface {
	// Name identifies the codec in reports and trace events.
	Name() string
	// WireBytes returns the on-wire size of an n-element vector, including
	// any per-chunk or per-entry metadata overhead.
	WireBytes(n int) int64
	// Encode compresses vals. The input is not modified; lossless codecs
	// may alias it in the returned Buf.
	Encode(vals []float32) *Buf
	// Decode expands b into out, which must have length b.N.
	Decode(b *Buf, out []float32)
}

// Parse builds a codec from a CLI spec. Accepted specs: "" or "none" (nil
// codec, meaning no compression), "fp32", "fp16", "int8", "topk" (default
// ratio 0.1), and "topk:<ratio>" with ratio in (0, 1]. seed makes the
// stochastic rounding of int8 reproducible.
func Parse(spec string, seed uint64) (Codec, error) {
	spec = strings.ToLower(strings.TrimSpace(spec))
	switch {
	case spec == "" || spec == "none":
		return nil, nil
	case spec == "fp32":
		return FP32{}, nil
	case spec == "fp16":
		return FP16{}, nil
	case spec == "int8":
		return NewInt8(seed), nil
	case spec == "topk":
		return NewTopK(0.1), nil
	case strings.HasPrefix(spec, "topk:"):
		r, err := strconv.ParseFloat(spec[len("topk:"):], 64)
		if err != nil || r <= 0 || r > 1 {
			return nil, fmt.Errorf("compress: bad topk ratio %q (want 0 < ratio <= 1)", spec)
		}
		return NewTopK(r), nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q (want none, fp32, fp16, int8, topk[:ratio])", spec)
	}
}

// Name returns c's name, or "none" for the nil codec.
func Name(c Codec) string {
	if c == nil {
		return "none"
	}
	return c.Name()
}

// Identity reports whether c is lossless and adds no wire savings — nil or
// fp32 — so callers can skip the encode/decode round-trip entirely.
func Identity(c Codec) bool {
	if c == nil {
		return true
	}
	_, ok := c.(FP32)
	return ok
}

// WireBytes returns the wire size of an n-float32 vector under c, falling
// back to raw 4n bytes when c is nil.
func WireBytes(c Codec, n int) int64 {
	if c == nil {
		return 4 * int64(n)
	}
	return c.WireBytes(n)
}

// Roundtrip returns vals as the receiver would see them: Encode then Decode
// into a fresh slice. With a nil or identity codec it returns vals unchanged
// (no copy).
func Roundtrip(c Codec, vals []float32) []float32 {
	if Identity(c) {
		return vals
	}
	out := make([]float32, len(vals))
	c.Decode(c.Encode(vals), out)
	return out
}

// FP32 is the identity codec: full-precision floats, 4 bytes each. It is
// the explicit baseline of the accuracy-vs-bytes sweep.
type FP32 struct{}

func (FP32) Name() string          { return "fp32" }
func (FP32) WireBytes(n int) int64 { return 4 * int64(n) }
func (FP32) Encode(vals []float32) *Buf {
	return &Buf{N: len(vals), F32: vals}
}
func (FP32) Decode(b *Buf, out []float32) {
	copy(out, b.F32)
}

// FP16 truncates each value to IEEE 754 binary16 (round-to-nearest-even),
// halving wire bytes. Relative error is bounded by 2^-11 in the normal
// range; values beyond ±65504 saturate to ±Inf like real fp16 hardware.
type FP16 struct{}

func (FP16) Name() string          { return "fp16" }
func (FP16) WireBytes(n int) int64 { return 2 * int64(n) }

func (FP16) Encode(vals []float32) *Buf {
	u := make([]uint16, len(vals))
	for i, v := range vals {
		u[i] = f32to16(v)
	}
	return &Buf{N: len(vals), U16: u}
}

func (FP16) Decode(b *Buf, out []float32) {
	for i, h := range b.U16 {
		out[i] = f16to32(h)
	}
}

// f32to16 converts a float32 to IEEE binary16 bits with round-to-nearest-
// even, saturating overflow to infinity.
func f32to16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff
	switch {
	case exp >= 0x1f: // overflow or inf/nan
		if int32(bits>>23&0xff) == 0xff && mant != 0 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // Inf
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign // underflows to zero
		}
		mant |= 0x800000 // implicit leading 1
		shift := uint32(14 - exp)
		half := mant >> shift
		// Round to nearest even on the bits shifted out.
		rem := mant & ((1 << shift) - 1)
		mid := uint32(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return sign | uint16(half)
	default:
		half := uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into the exponent; that is correct rounding
		}
		return sign | half
	}
}

// f16to32 expands IEEE binary16 bits to float32.
func f16to32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // inf/nan
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	case exp == 0: // subnormal or zero
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Normalise the subnormal.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// chunkSize is the int8 quantisation granularity: each chunk carries its own
// (min, scale) pair so outliers only distort their neighbourhood.
const chunkSize = 256

// Int8 quantises each chunkSize-element chunk to 8-bit codes with a
// per-chunk affine map code = (v - min) / scale, scale = (max - min) / 255.
// Rounding is stochastic — the round-up probability equals the fractional
// part — which makes the quantiser unbiased in expectation; the random bits
// are a pure hash of (seed, element index, value bits), so encoding is
// deterministic and identical on every rank. Absolute error per element is
// strictly less than scale, i.e. (max-min)/255 of the element's chunk.
type Int8 struct {
	seed uint64
}

// NewInt8 returns an int8 codec whose stochastic rounding is driven by seed.
func NewInt8(seed uint64) Int8 { return Int8{seed: seed} }

func (Int8) Name() string { return "int8" }

func (Int8) WireBytes(n int) int64 {
	chunks := (int64(n) + chunkSize - 1) / chunkSize
	return int64(n) + 8*chunks // 1 byte/code + (min, scale) float32 per chunk
}

func (c Int8) Encode(vals []float32) *Buf {
	n := len(vals)
	chunks := (n + chunkSize - 1) / chunkSize
	b := &Buf{
		N:      n,
		U8:     make([]byte, n),
		Scales: make([]float32, chunks),
		Mins:   make([]float32, chunks),
	}
	for ci := 0; ci < chunks; ci++ {
		lo, hi := ci*chunkSize, (ci+1)*chunkSize
		if hi > n {
			hi = n
		}
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		b.Mins[ci] = mn
		if mn == mx {
			// Constant chunk (commonly all-zero gradients in cost-only
			// mode): scale 0, codes stay zero, decode reproduces mn exactly.
			continue
		}
		scale := (mx - mn) / 255
		b.Scales[ci] = scale
		for i := lo; i < hi; i++ {
			q := (vals[i] - mn) / scale
			// q is non-negative (vals[i] >= mn), so integer truncation is
			// floor — same result as the float64 math.Floor round trip.
			fl := float32(int32(q))
			frac := q - fl
			code := int32(fl)
			if frac > 0 {
				// Stochastic rounding: round up with probability frac.
				h := rng.Mix(c.seed, uint64(i), uint64(math.Float32bits(vals[i])))
				if float32(h>>40)*(1.0/(1<<24)) < frac {
					code++
				}
			}
			if code < 0 {
				code = 0
			} else if code > 255 {
				code = 255
			}
			b.U8[i] = byte(code)
		}
	}
	return b
}

// SumConstant detects the case where every contribution of an int8-encoded
// allreduce is constant per chunk (scale 0 — e.g. the all-zero gradients of
// cost-only training) and fills dst with their rank-order sum directly:
// every element of a chunk would run the identical add sequence, so it is
// computed once per chunk. Returns false, leaving dst untouched, when any
// buffer is not an all-constant int8 encoding; the caller then runs the
// general decode-and-accumulate path. When it returns true, dst is exactly
// — bit for bit — what decoding each buffer and accumulating into a zeroed
// dst would have produced.
func SumConstant(bufs []*Buf, dst []float32) bool {
	for _, b := range bufs {
		if b == nil || b.U8 == nil || b.Scales == nil || b.Mins == nil || b.N != len(dst) {
			return false
		}
		for _, s := range b.Scales {
			if s != 0 {
				return false
			}
		}
	}
	n := len(dst)
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		ci := lo / chunkSize
		var v float32 // the zeroed accumulator element
		for _, b := range bufs {
			// Identical to Decode's constant-chunk fill (mn + 0*sc) added in.
			v += b.Mins[ci] + 0*b.Scales[ci]
		}
		seg := dst[lo:hi]
		for i := range seg {
			seg[i] = v
		}
	}
	return true
}

func (Int8) Decode(b *Buf, out []float32) {
	n := len(out)
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		ci := lo / chunkSize
		mn, sc := b.Mins[ci], b.Scales[ci]
		dst := out[lo:hi]
		src := b.U8[lo:hi:hi]
		if sc == 0 {
			// Constant chunk: every element decodes to the same value. The
			// explicit mn + 0*sc keeps IEEE semantics (zero-sign handling)
			// identical to the general path below for any code byte.
			v := mn + 0*sc
			for i := range dst {
				dst[i] = v
			}
			continue
		}
		for i, u := range src {
			dst[i] = mn + float32(u)*sc
		}
	}
}

// TopK keeps only the ceil(ratio*n) largest-magnitude entries; the rest
// decode to zero. Each kept entry costs 8 wire bytes (int32 index + float32
// value), so the codec only pays off below ratio 0.5. Selection is
// deterministic: ties in magnitude break toward the lower index.
type TopK struct {
	Ratio float64
}

// NewTopK returns a top-k sparsifier keeping a ratio fraction of entries.
func NewTopK(ratio float64) TopK { return TopK{Ratio: ratio} }

func (t TopK) Name() string { return fmt.Sprintf("topk%.2g", t.Ratio) }

func (t TopK) k(n int) int {
	k := int(math.Ceil(t.Ratio * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

func (t TopK) WireBytes(n int) int64 {
	if n == 0 {
		return 0
	}
	return 8 * int64(t.k(n)) // index + value per kept entry
}

func (t TopK) Encode(vals []float32) *Buf {
	n := len(vals)
	b := &Buf{N: n}
	if n == 0 {
		return b
	}
	k := t.k(n)
	// Deterministic selection of the k largest |v|: a size-k min-heap keyed
	// by (|v|, -index) so equal magnitudes prefer the lower index.
	type ent struct {
		abs float32
		idx int32
	}
	less := func(a, b ent) bool { // a strictly worse (smaller) than b
		if a.abs != b.abs {
			return a.abs < b.abs
		}
		return a.idx > b.idx
	}
	heap := make([]ent, 0, k)
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i, v := range vals {
		e := ent{abs: float32(math.Abs(float64(v))), idx: int32(i)}
		if len(heap) < k {
			heap = append(heap, e)
			if len(heap) == k {
				for j := k/2 - 1; j >= 0; j-- {
					down(j)
				}
			}
			continue
		}
		if less(heap[0], e) {
			heap[0] = e
			down(0)
		}
	}
	if len(heap) < k { // n < k cannot happen (k clamped), but keep heapified
		for j := len(heap)/2 - 1; j >= 0; j-- {
			down(j)
		}
	}
	// Emit in ascending index order for a canonical wire image.
	idxs := make([]int32, len(heap))
	for i, e := range heap {
		idxs[i] = e.idx
	}
	slices.Sort(idxs)
	b.I32 = idxs
	b.F32 = make([]float32, len(idxs))
	for i, ix := range idxs {
		b.F32[i] = vals[ix]
	}
	return b
}

func (TopK) Decode(b *Buf, out []float32) {
	for i := range out {
		out[i] = 0
	}
	for i, ix := range b.I32 {
		out[ix] = b.F32[i]
	}
}
