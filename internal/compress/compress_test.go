package compress

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// randVec fills a vector with mixed-scale gaussian values, the shape of a
// real gradient (mostly small, some outliers).
func randVec(r *rng.RNG, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		x := r.NormFloat64() * 0.1
		if r.Float64() < 0.01 {
			x *= 50 // occasional outlier
		}
		v[i] = float32(x)
	}
	return v
}

func TestFP32Lossless(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 7, 256, 1000} {
		v := randVec(r, n)
		got := Roundtrip(FP32{}, v)
		for i := range v {
			if math.Float32bits(got[i]) != math.Float32bits(v[i]) {
				t.Fatalf("n=%d idx %d: fp32 not bit-lossless: %x != %x",
					n, i, math.Float32bits(got[i]), math.Float32bits(v[i]))
			}
		}
		if WireBytes(FP32{}, n) != 4*int64(n) {
			t.Fatalf("fp32 wire bytes: got %d want %d", WireBytes(FP32{}, n), 4*n)
		}
	}
}

func TestFP16ErrorBound(t *testing.T) {
	r := rng.New(2)
	v := randVec(r, 4096)
	got := Roundtrip(FP16{}, v)
	for i := range v {
		x := float64(v[i])
		// Round-to-nearest binary16 has relative error <= 2^-11 in the
		// normal range; subnormals have absolute error <= 2^-25.
		bound := math.Abs(x)/2048 + math.Exp2(-25)
		if err := math.Abs(float64(got[i]) - x); err > bound {
			t.Fatalf("idx %d: fp16 error %g exceeds bound %g (v=%g)", i, err, bound, x)
		}
	}
}

func TestFP16SpecialValues(t *testing.T) {
	cases := []float32{0, float32(math.Copysign(0, -1)), 1, -1, 65504, -65504,
		1e9, -1e9, 6.1e-5, 5.9e-8, float32(math.Inf(1)), float32(math.Inf(-1))}
	got := Roundtrip(FP16{}, cases)
	if got[0] != 0 || got[2] != 1 || got[3] != -1 {
		t.Fatalf("fp16 exact values mangled: %v", got[:4])
	}
	if got[4] != 65504 || got[5] != -65504 {
		t.Fatalf("fp16 max-normal mangled: %v %v", got[4], got[5])
	}
	if !math.IsInf(float64(got[6]), 1) || !math.IsInf(float64(got[7]), -1) {
		t.Fatalf("fp16 overflow should saturate to inf: %v %v", got[6], got[7])
	}
	if !math.IsInf(float64(got[10]), 1) || !math.IsInf(float64(got[11]), -1) {
		t.Fatalf("fp16 inf not preserved: %v %v", got[10], got[11])
	}
}

func TestInt8ErrorWithinChunkBound(t *testing.T) {
	r := rng.New(3)
	c := NewInt8(42)
	for _, n := range []int{1, 255, 256, 257, 4096, 5000} {
		v := randVec(r, n)
		got := Roundtrip(c, v)
		for i := range v {
			ci := i / chunkSize
			lo, hi := ci*chunkSize, (ci+1)*chunkSize
			if hi > n {
				hi = n
			}
			mn, mx := v[lo], v[lo]
			for _, x := range v[lo:hi] {
				if x < mn {
					mn = x
				}
				if x > mx {
					mx = x
				}
			}
			scale := float64(mx-mn) / 255
			if err := math.Abs(float64(got[i] - v[i])); err > scale+1e-12 {
				t.Fatalf("n=%d idx %d: int8 error %g exceeds per-chunk bound %g", n, i, err, scale)
			}
		}
	}
}

func TestInt8ConstantChunkExact(t *testing.T) {
	v := make([]float32, 512)
	for i := range v {
		v[i] = 3.25
	}
	got := Roundtrip(NewInt8(7), v)
	for i := range v {
		if got[i] != 3.25 {
			t.Fatalf("constant chunk not exact at %d: %v", i, got[i])
		}
	}
}

func TestInt8Deterministic(t *testing.T) {
	r := rng.New(4)
	v := randVec(r, 2048)
	a := NewInt8(9).Encode(v)
	b := NewInt8(9).Encode(v)
	for i := range a.U8 {
		if a.U8[i] != b.U8[i] {
			t.Fatalf("same-seed int8 encodes differ at %d", i)
		}
	}
	c := NewInt8(10).Encode(v)
	same := true
	for i := range a.U8 {
		if a.U8[i] != c.U8[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical stochastic rounding (suspicious)")
	}
}

func TestInt8Unbiased(t *testing.T) {
	// Stochastic rounding should keep the chunk mean close to the input
	// mean; nearest rounding of a constant fractional offset would not.
	n := chunkSize * 64
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(i%2)*2 - 1 + 0.3 // alternating -0.7 / +1.3
	}
	got := Roundtrip(NewInt8(11), v)
	var sumIn, sumOut float64
	for i := range v {
		sumIn += float64(v[i])
		sumOut += float64(got[i])
	}
	meanErr := math.Abs(sumOut-sumIn) / float64(n)
	// scale = 2/255 ≈ 0.0078; an unbiased rounder's mean error shrinks
	// like scale/sqrt(n) ≈ 6e-5. Allow 10x slack.
	if meanErr > 6e-4 {
		t.Fatalf("int8 rounding looks biased: mean error %g", meanErr)
	}
}

func TestTopKPreservesLargestMagnitudes(t *testing.T) {
	r := rng.New(5)
	for _, ratio := range []float64{0.05, 0.1, 0.5} {
		c := NewTopK(ratio)
		n := 1000
		v := randVec(r, n)
		got := Roundtrip(c, v)
		k := c.k(n)
		// The k largest |v| must survive exactly; everything else is zero.
		type kv struct {
			abs float64
			idx int
		}
		all := make([]kv, n)
		for i, x := range v {
			all[i] = kv{math.Abs(float64(x)), i}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].abs != all[b].abs {
				return all[a].abs > all[b].abs
			}
			return all[a].idx < all[b].idx
		})
		keep := map[int]bool{}
		for _, e := range all[:k] {
			keep[e.idx] = true
		}
		kept := 0
		for i := range got {
			if keep[i] {
				if got[i] != v[i] {
					t.Fatalf("ratio %g: top-k entry %d not preserved exactly: %v != %v", ratio, i, got[i], v[i])
				}
				kept++
			} else if got[i] != 0 {
				t.Fatalf("ratio %g: non-top-k entry %d should be zero, got %v", ratio, i, got[i])
			}
		}
		if kept != k {
			t.Fatalf("ratio %g: kept %d entries, want %d", ratio, kept, k)
		}
	}
}

func TestTopKTieBreakDeterministic(t *testing.T) {
	v := []float32{1, -1, 1, 1, -1, 0.5, 1, -1}
	c := NewTopK(0.5) // k=4 of 8, but six entries tie at |1|
	a := c.Encode(v)
	b := c.Encode(v)
	if len(a.I32) != 4 {
		t.Fatalf("want 4 kept, got %d", len(a.I32))
	}
	for i := range a.I32 {
		if a.I32[i] != b.I32[i] {
			t.Fatal("topk tie-break not deterministic")
		}
		// Lower indices win ties: expect exactly indices 0,1,2,3.
		if a.I32[i] != int32(i) {
			t.Fatalf("tie-break should prefer lower indices, kept %v", a.I32)
		}
	}
}

func TestWireBytesRatios(t *testing.T) {
	n := 300000 // a realistic gradient length
	raw := WireBytes(nil, n)
	if raw != 4*int64(n) {
		t.Fatalf("nil codec wire bytes: %d", raw)
	}
	if got := WireBytes(FP16{}, n); got != raw/2 {
		t.Fatalf("fp16 wire bytes %d, want %d", got, raw/2)
	}
	int8b := WireBytes(NewInt8(0), n)
	if ratio := float64(raw) / float64(int8b); ratio < 3.5 {
		t.Fatalf("int8 wire reduction %.2fx below the 3.5x requirement", ratio)
	}
	tk := WireBytes(NewTopK(0.1), n)
	if ratio := float64(raw) / float64(tk); ratio < 4.9 {
		t.Fatalf("topk(0.1) wire reduction %.2fx, want ~5x", ratio)
	}
}

func TestParse(t *testing.T) {
	for _, spec := range []string{"", "none"} {
		c, err := Parse(spec, 1)
		if err != nil || c != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, c, err)
		}
	}
	for spec, name := range map[string]string{
		"fp32": "fp32", "fp16": "fp16", "int8": "int8",
		"topk": "topk0.1", "topk:0.25": "topk0.25", "FP16": "fp16",
	} {
		c, err := Parse(spec, 1)
		if err != nil || c == nil || c.Name() != name {
			t.Fatalf("Parse(%q) = %v, %v; want codec %q", spec, c, err, name)
		}
	}
	for _, bad := range []string{"zstd", "topk:0", "topk:1.5", "topk:x"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestIdentity(t *testing.T) {
	if !Identity(nil) || !Identity(FP32{}) {
		t.Fatal("nil and fp32 are identity codecs")
	}
	if Identity(FP16{}) || Identity(NewInt8(0)) || Identity(NewTopK(0.1)) {
		t.Fatal("lossy codecs must not be identity")
	}
}

func TestRoundtripAliasesIdentity(t *testing.T) {
	v := []float32{1, 2, 3}
	if got := Roundtrip(nil, v); &got[0] != &v[0] {
		t.Fatal("nil codec roundtrip should return input unchanged")
	}
	if got := Roundtrip(FP32{}, v); &got[0] != &v[0] {
		t.Fatal("fp32 roundtrip should return input unchanged")
	}
}
