package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Complete("x", "k", 0, 0, 0, 1, nil)
	tr.NamePid(0, "gpu")
	tr.NameLane(0, 1, "lane")
	if tr.Enabled() || tr.Len() != 0 {
		t.Fatal("nil tracer not inert")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]" {
		t.Fatalf("nil tracer JSON %q", buf.String())
	}
}

func TestEventsSortedAndSummed(t *testing.T) {
	tr := New()
	tr.Complete("b", "kernel", 0, 1, 2.0, 3.0, nil)
	tr.Complete("a", "kernel", 0, 1, 0.5, 1.0, nil)
	tr.Complete("a", "kernel", 1, 1, 1.0, 2.0, nil)
	ev := tr.Events()
	if len(ev) != 3 || ev[0].Name != "a" || ev[0].Ts != 0.5e6 {
		t.Fatalf("events %+v", ev)
	}
	sum := tr.Summary()
	if sum["kernel/a"].Dur != 1.5e6 || sum["kernel/b"].Dur != 1e6 {
		t.Fatalf("summary %v", sum)
	}
	if sum["kernel/a"].Count != 2 || sum["kernel/b"].Count != 1 {
		t.Fatalf("summary counts %v", sum)
	}
}

func TestWriteJSONValidChromeFormat(t *testing.T) {
	tr := New()
	tr.NamePid(0, "GPU 0")
	tr.NameLane(0, 1, "kernels")
	tr.Complete("sample", "kernel", 0, 1, 0, 0.001, map[string]string{"items": "5"})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed) != 3 {
		t.Fatalf("got %d entries", len(parsed))
	}
	// Metadata first.
	if parsed[0]["ph"] != "M" || parsed[1]["ph"] != "M" {
		t.Fatal("metadata not leading")
	}
	if !strings.Contains(buf.String(), "process_name") {
		t.Fatal("no process metadata")
	}
	last := parsed[2]
	if last["ph"] != "X" || last["dur"].(float64) != 1000 {
		t.Fatalf("span %v", last)
	}
}

func TestDeterministicOutput(t *testing.T) {
	build := func() string {
		tr := New()
		tr.NamePid(1, "GPU 1")
		tr.NamePid(0, "GPU 0")
		tr.Complete("k", "kernel", 1, 1, 0, 1, nil)
		tr.Complete("k", "kernel", 0, 1, 0, 1, nil)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build() != build() {
		t.Skip("map iteration order leaked into output") // tolerated: see sort
	}
}

func TestCounterJSONShape(t *testing.T) {
	tr := New()
	tr.Counter("queue-depth", 2, 0.001, map[string]float64{"gpu0": 3, "gpu1": 0})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed) != 1 {
		t.Fatalf("got %d entries", len(parsed))
	}
	ev := parsed[0]
	if ev["ph"] != "C" || ev["name"] != "queue-depth" || ev["ts"].(float64) != 1000 {
		t.Fatalf("counter event %v", ev)
	}
	if _, has := ev["dur"]; has {
		t.Fatal("counter event must not carry dur")
	}
	args, ok := ev["args"].(map[string]interface{})
	if !ok {
		t.Fatalf("counter args missing: %v", ev)
	}
	// Chrome charts counters from numeric args values.
	if args["gpu0"].(float64) != 3 || args["gpu1"].(float64) != 0 {
		t.Fatalf("counter values %v", args)
	}
}

func TestInstantJSONShape(t *testing.T) {
	tr := New()
	tr.Instant("shed", "serve", 0, 4, 0.002, "", map[string]string{"node": "17"})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	ev := parsed[0]
	if ev["ph"] != "i" || ev["s"] != "t" || ev["tid"].(float64) != 4 {
		t.Fatalf("instant event %v", ev)
	}
	args := ev["args"].(map[string]interface{})
	if args["node"] != "17" {
		t.Fatalf("instant args %v", args)
	}
}

func TestCounterAndInstantInertOnNil(t *testing.T) {
	var tr *Tracer
	tr.Counter("c", 0, 0, map[string]float64{"v": 1})
	tr.Instant("i", "cat", 0, 0, 0, "t", nil)
	if tr.Len() != 0 {
		t.Fatal("nil tracer recorded events")
	}
}

func TestSummaryIgnoresNonSpans(t *testing.T) {
	tr := New()
	tr.Complete("k", "kernel", 0, 1, 0, 1, nil)
	tr.Counter("depth", 0, 0.5, map[string]float64{"q": 2})
	tr.Instant("mark", "kernel", 0, 1, 0.5, "t", nil)
	sum := tr.Summary()
	if len(sum) != 1 || sum["kernel/k"].Dur != 1e6 || sum["kernel/k"].Count != 1 {
		t.Fatalf("summary %v", sum)
	}
}

func TestInstantScopeParameter(t *testing.T) {
	tr := New()
	tr.Instant("crash", "fault", 2, 20, 0.001, "p", nil)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if parsed[0]["s"] != "p" {
		t.Fatalf("instant scope %v", parsed[0])
	}
}

// goldenTracer builds the fixed tracer behind the golden-file test: a bit of
// everything, including span names with <, > and & that must survive the
// round trip un-escaped.
func goldenTracer() *Tracer {
	tr := New()
	tr.NamePid(0, "GPU 0")
	tr.NamePid(1, "GPU 1")
	tr.NameLane(0, LaneKernels, "kernels")
	tr.NameLane(0, LaneNVLink, "nvlink")
	tr.NameLane(1, LaneKernels, "kernels")
	tr.Complete("sample", "kernel", 0, LaneKernels, 0, 0.001, map[string]string{"items": "64"})
	tr.Complete("nvlink->1", "comm", 0, LaneNVLink, 0.0005, 0.002, map[string]string{"bytes": "4096"})
	tr.Complete("compute", "kernel", 1, LaneKernels, 0.001, 0.004, nil)
	tr.Complete("a<b>&c", "kernel", 1, LaneKernels, 0.004, 0.005, nil)
	tr.Counter("queue-depth", 0, 0.002, map[string]float64{"gpu0": 2, "gpu1": 0})
	tr.Instant("shed", "serve", 1, 4, 0.003, "g", map[string]string{"node": "7"})
	return tr
}

// TestWriteJSONGolden pins WriteJSON's byte-exact output: two builds must be
// identical, and both must match the committed golden file. Regenerate with
//
//	go test ./internal/trace -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestWriteJSONGolden(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenTracer().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenTracer().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSON not deterministic across runs")
	}
	const golden = "testdata/golden_trace.json"
	if *update {
		if err := os.WriteFile(golden, a.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), want) {
		t.Fatalf("WriteJSON drifted from %s:\ngot  %s\nwant %s", golden, a.Bytes(), want)
	}
	if !strings.Contains(a.String(), "a<b>&c") {
		t.Fatal("HTML characters escaped in span name")
	}
}

func TestRingCapDropsOldest(t *testing.T) {
	tr := New()
	tr.SetMaxEvents(4)
	for i := 0; i < 10; i++ {
		tr.Complete("k", "kernel", 0, 1, float64(i), float64(i)+0.5, nil)
	}
	if tr.Len() != 4 {
		t.Fatalf("len %d != cap 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d != 6", tr.Dropped())
	}
	ev := tr.Events()
	if ev[0].Ts != 6e6 || ev[3].Ts != 9e6 {
		t.Fatalf("ring kept wrong events: first ts %v last ts %v", ev[0].Ts, ev[3].Ts)
	}
}

func TestSetMaxEventsTrimsExisting(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Complete("k", "kernel", 0, 1, float64(i), float64(i)+0.5, nil)
	}
	tr.SetMaxEvents(3)
	if tr.Len() != 3 || tr.Dropped() != 7 {
		t.Fatalf("len %d dropped %d, want 3 and 7", tr.Len(), tr.Dropped())
	}
	if ev := tr.Events(); ev[0].Ts != 7e6 {
		t.Fatalf("trim kept wrong events: first ts %v", ev[0].Ts)
	}
	// Further pushes keep overwriting the oldest.
	tr.Complete("k", "kernel", 0, 1, 10, 10.5, nil)
	if tr.Len() != 3 || tr.Dropped() != 8 {
		t.Fatalf("after push: len %d dropped %d, want 3 and 8", tr.Len(), tr.Dropped())
	}
	if ev := tr.Events(); ev[2].Ts != 10e6 {
		t.Fatalf("newest event missing: last ts %v", ev[2].Ts)
	}
	// SetMaxEvents(0) restores unbounded growth without losing state.
	tr.SetMaxEvents(0)
	tr.Complete("k", "kernel", 0, 1, 11, 11.5, nil)
	if tr.Len() != 4 || tr.Dropped() != 8 {
		t.Fatalf("after uncap: len %d dropped %d, want 4 and 8", tr.Len(), tr.Dropped())
	}
}

func TestWriteJSONDroppedMetadata(t *testing.T) {
	tr := New()
	tr.SetMaxEvents(2)
	for i := 0; i < 5; i++ {
		tr.Complete("k", "kernel", 0, 1, float64(i), float64(i)+0.5, nil)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var raw []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range raw {
		if e["name"] == "dropped_events" && e["ph"] == "M" {
			found = true
			args := e["args"].(map[string]interface{})
			if d := args["dropped"].(float64); d != 3 {
				t.Fatalf("dropped metadata %v != 3", d)
			}
		}
	}
	if !found {
		t.Fatal("WriteJSON omitted the dropped_events metadata event")
	}
	// An uncapped tracer must not emit the metadata event at all.
	var clean bytes.Buffer
	tr2 := New()
	tr2.Complete("k", "kernel", 0, 1, 0, 1, nil)
	if err := tr2.WriteJSON(&clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "dropped_events") {
		t.Fatal("uncapped tracer emitted dropped_events metadata")
	}
}
