// Package trace records simulated execution events (kernels, transfers,
// worker stages) and exports them in the Chrome trace-event format, so a
// DSP run can be inspected on a timeline in chrome://tracing or Perfetto —
// the virtual-time equivalent of an Nsight profile. Attach a Tracer to a
// machine (hw.Machine.Tracer) or pass one to the training CLIs with
// -trace.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Canonical thread-lane ids shared by every emitter so analysis code
// (internal/prof) can classify spans without string-matching lane labels.
// GPU pids use 1-13; the serving frontend adds 20/21 on GPU pids.
const (
	LaneKernels  = 1  // compute/gather/sample kernels
	LaneNVLink   = 2  // NVLink transfers
	LaneUVA      = 3  // zero-copy host reads
	LaneSampler  = 10 // sampler worker stage
	LaneLoader   = 11 // loader worker stage
	LaneTrainer  = 12 // trainer worker stage
	LaneCCC      = 13 // CCC launch-gate waits
	LaneRequests = 20 // serving: per-request spans
	LaneRounds   = 21 // serving: dispatch-round spans
)

// Event is one trace event in microseconds of virtual time. Ph is "X"
// (complete span), "C" (counter sample, numeric Values) or "i" (instant).
type Event struct {
	Name   string             `json:"name"`
	Cat    string             `json:"cat"`
	Ph     string             `json:"ph"`
	Ts     float64            `json:"ts"`
	Dur    float64            `json:"dur,omitempty"`
	Pid    int                `json:"pid"`
	Tid    int                `json:"tid"`
	S      string             `json:"s,omitempty"`    // instant scope: "t", "p" or "g"
	Args   map[string]string  `json:"args,omitempty"` // string args ("X"/"i")
	Values map[string]float64 `json:"-"`              // numeric series ("C")
}

// Tracer accumulates events. The simulation is single-threaded, so no
// locking is needed; a nil *Tracer is safe to call (no-ops).
//
// By default the event buffer is unbounded; SetMaxEvents turns it into a
// ring that keeps the most recent events and counts the overwritten ones
// (long fleet runs stay within a fixed memory budget at the cost of
// losing the oldest spans).
type Tracer struct {
	events  []Event
	head    int               // next overwrite position once the ring is full (max > 0)
	max     int               // ring capacity; 0 = unbounded
	dropped int               // events overwritten by the ring
	names   map[[2]int]string // (pid, tid) -> lane name
	pids    map[int]string
}

// New creates an empty tracer.
func New() *Tracer {
	return &Tracer{names: map[[2]int]string{}, pids: map[int]string{}}
}

// Enabled reports whether events are being collected.
func (t *Tracer) Enabled() bool { return t != nil }

// SetMaxEvents caps the in-memory event buffer at n events (0 restores
// unbounded growth). When the cap is exceeded the oldest events are
// overwritten and counted; Dropped exposes the count and WriteJSON
// records it as a metadata event. If more than n events are already
// recorded, the oldest are dropped immediately.
func (t *Tracer) SetMaxEvents(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	t.max = n
	if n > 0 && len(t.events) > n {
		ordered := t.ordered()
		t.dropped += len(ordered) - n
		t.events = ordered[len(ordered)-n:]
		t.head = 0
	}
}

// Dropped returns how many events the ring cap has discarded.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// push appends an event, overwriting the oldest once the ring is full.
func (t *Tracer) push(e Event) {
	if t.max > 0 && len(t.events) == t.max {
		t.events[t.head] = e
		t.head = (t.head + 1) % t.max
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// ordered returns the retained events in insertion order (unrolls the
// ring).
func (t *Tracer) ordered() []Event {
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// NamePid labels a process lane (e.g. "GPU 3").
func (t *Tracer) NamePid(pid int, name string) {
	if t == nil {
		return
	}
	t.pids[pid] = name
}

// NameLane labels a thread lane within a process (e.g. "sampler").
func (t *Tracer) NameLane(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.names[[2]int{pid, tid}] = name
}

// Complete records a finished span. start/end are virtual seconds.
func (t *Tracer) Complete(name, cat string, pid, tid int, start, end float64, args map[string]string) {
	if t == nil {
		return
	}
	t.push(Event{
		Name: name, Cat: cat, Ph: "X",
		Ts: start * 1e6, Dur: (end - start) * 1e6,
		Pid: pid, Tid: tid, Args: args,
	})
}

// Counter records a sample of one or more numeric series at virtual time ts
// (seconds). Chrome/Perfetto chart counters with the same (pid, name) as a
// stacked area over time — used for queue depths, outstanding requests, etc.
func (t *Tracer) Counter(name string, pid int, ts float64, values map[string]float64) {
	if t == nil {
		return
	}
	t.push(Event{
		Name: name, Cat: "counter", Ph: "C",
		Ts: ts * 1e6, Pid: pid, Values: values,
	})
}

// Instant records a zero-duration marker at virtual time ts (seconds), drawn
// as a flag on the lane — used for one-off occurrences such as shed requests.
// scope is "t" (thread), "p" (process) or "g" (global); empty defaults to "t".
func (t *Tracer) Instant(name, cat string, pid, tid int, ts float64, scope string, args map[string]string) {
	if t == nil {
		return
	}
	if scope == "" {
		scope = "t"
	}
	t.push(Event{
		Name: name, Cat: cat, Ph: "i",
		Ts: ts * 1e6, Pid: pid, Tid: tid, S: scope, Args: args,
	})
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns a copy of the recorded spans sorted by start time.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := t.ordered()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out
}

// PidNames returns a copy of the process-lane labels (pid -> name).
func (t *Tracer) PidNames() map[int]string {
	out := map[int]string{}
	if t == nil {
		return out
	}
	for pid, name := range t.pids {
		out[pid] = name
	}
	return out
}

// LaneNames returns a copy of the thread-lane labels ((pid, tid) -> name).
func (t *Tracer) LaneNames() map[[2]int]string {
	out := map[[2]int]string{}
	if t == nil {
		return out
	}
	for key, name := range t.names {
		out[key] = name
	}
	return out
}

// WriteJSON emits the Chrome trace-event JSON array, including metadata
// events naming the lanes.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]")
		return err
	}
	all := make([]map[string]interface{}, 0, len(t.events)+len(t.pids)+len(t.names))
	for pid, name := range t.pids {
		all = append(all, map[string]interface{}{
			"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
			"args": map[string]string{"name": name},
		})
	}
	for key, name := range t.names {
		all = append(all, map[string]interface{}{
			"name": "thread_name", "ph": "M", "pid": key[0], "tid": key[1],
			"args": map[string]string{"name": name},
		})
	}
	if t.dropped > 0 {
		all = append(all, map[string]interface{}{
			"name": "dropped_events", "ph": "M", "pid": 0, "tid": 0,
			"args": map[string]int{"dropped": t.dropped},
		})
	}
	for _, e := range t.Events() {
		m := map[string]interface{}{
			"name": e.Name, "cat": e.Cat, "ph": e.Ph,
			"ts": e.Ts, "pid": e.Pid, "tid": e.Tid,
		}
		if e.Ph == "X" {
			m["dur"] = e.Dur
		}
		if e.S != "" {
			m["s"] = e.S
		}
		switch {
		case len(e.Values) > 0:
			m["args"] = e.Values
		case len(e.Args) > 0:
			m["args"] = e.Args
		}
		all = append(all, m)
	}
	// Deterministic output: sort metadata-first then by ts.
	sort.SliceStable(all, func(i, j int) bool {
		pi, pj := all[i]["ph"] == "M", all[j]["ph"] == "M"
		if pi != pj {
			return pi
		}
		ti, _ := all[i]["ts"].(float64)
		tj, _ := all[j]["ts"].(float64)
		if ti != tj {
			return ti < tj
		}
		return fmt.Sprint(all[i]["pid"], all[i]["tid"], all[i]["name"]) <
			fmt.Sprint(all[j]["pid"], all[j]["tid"], all[j]["name"])
	})
	enc := json.NewEncoder(w)
	// Span names may legitimately contain < and > (e.g. "nvlink->3"); keep
	// them byte-identical through a JSON round trip instead of > escapes.
	enc.SetEscapeHTML(false)
	return enc.Encode(all)
}

// SpanStat aggregates the complete spans of one (category, name) key.
type SpanStat struct {
	Dur   float64 // total duration, microseconds
	Count int     // number of spans
}

// Summary aggregates span time and span counts per (category, name), useful
// for programmatic breakdowns and tests.
func (t *Tracer) Summary() map[string]SpanStat {
	out := map[string]SpanStat{}
	if t == nil {
		return out
	}
	for _, e := range t.events {
		if e.Ph != "X" {
			continue
		}
		s := out[e.Cat+"/"+e.Name]
		s.Dur += e.Dur
		s.Count++
		out[e.Cat+"/"+e.Name] = s
	}
	return out
}
