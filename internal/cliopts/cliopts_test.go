package cliopts

import (
	"flag"
	"testing"

	"repro/internal/cache"
	"repro/internal/fault"
)

func newSet(t *testing.T, grad bool, args ...string) *Common {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs)
	if grad {
		c.RegisterGrad(fs)
	}
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return c
}

func TestDefaults(t *testing.T) {
	c := newSet(t, true)
	if faults, err := c.FaultSchedule(4); err != nil || len(faults) != 0 {
		t.Fatalf("default faults = %v, %v", faults, err)
	}
	if pol, err := c.Policy(); err != nil || pol != cache.Static {
		t.Fatalf("default policy = %v, %v", pol, err)
	}
	if c.CacheBudget() != 0 {
		t.Fatalf("default budget = %d", c.CacheBudget())
	}
	for name, f := range map[string]func(uint64) (any, error){
		"feat": func(s uint64) (any, error) { return c.FeatCodec(s) },
		"grad": func(s uint64) (any, error) { return c.GradCodec(s) },
	} {
		v, err := f(1)
		if err != nil {
			t.Fatalf("default %s codec: %v", name, err)
		}
		if v != nil {
			if cd, ok := v.(interface{ Name() string }); ok && cd != nil {
				// compress.Codec(nil) boxed in any is non-nil only if typed;
				// Parse("") returns untyped nil, so this is a failure.
				t.Fatalf("default %s codec = %v, want nil", name, cd)
			}
		}
	}
}

func TestParsesSharedFlags(t *testing.T) {
	c := newSet(t, true,
		"-faults", "crash@gpu1:t=0.5",
		"-cache", "lfu",
		"-cache-budget", "1048576",
		"-compress-feat", "fp16",
		"-compress-grad", "int8",
	)
	faults, err := c.FaultSchedule(4)
	if err != nil || len(faults) != 1 || faults[0].Kind != fault.Crash || faults[0].GPU != 1 {
		t.Fatalf("faults = %+v, %v", faults, err)
	}
	if pol, _ := c.Policy(); pol != cache.LFUDecay {
		t.Fatalf("policy = %v", pol)
	}
	if c.CacheBudget() != 1<<20 {
		t.Fatalf("budget = %d", c.CacheBudget())
	}
	fc, err := c.FeatCodec(1)
	if err != nil || fc == nil || fc.Name() != "fp16" {
		t.Fatalf("feat codec = %v, %v", fc, err)
	}
	gc, err := c.GradCodec(1)
	if err != nil || gc == nil || gc.Name() != "int8" {
		t.Fatalf("grad codec = %v, %v", gc, err)
	}
}

func TestGradCodecWithoutRegisterGrad(t *testing.T) {
	c := newSet(t, false)
	gc, err := c.GradCodec(1)
	if err != nil || gc != nil {
		t.Fatalf("grad codec without RegisterGrad = %v, %v; want nil, nil", gc, err)
	}
}

func TestBadSpecsError(t *testing.T) {
	c := newSet(t, true,
		"-faults", "explode@gpu9",
		"-cache", "mru",
		"-compress-feat", "zstd",
		"-compress-grad", "topk:2",
	)
	if _, err := c.FaultSchedule(4); err == nil {
		t.Error("bad fault spec accepted")
	}
	if _, err := c.Policy(); err == nil {
		t.Error("bad cache policy accepted")
	}
	if _, err := c.FeatCodec(1); err == nil {
		t.Error("bad feat codec accepted")
	}
	if _, err := c.GradCodec(1); err == nil {
		t.Error("bad grad codec accepted")
	}
}
