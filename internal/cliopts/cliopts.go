// Package cliopts centralises the CLI flag wiring shared by the dsptrain
// and dspserve binaries — fault injection, adaptive-cache selection, and
// communication compression — so the two frontends register identical flags
// and resolve them through the same validation paths instead of drifting.
package cliopts

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/prof"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/telemetry"
)

// Common holds the flag values shared by every binary that drives the
// simulated fleet. Construct it with Register; read the resolved values
// through the accessor methods after flag.Parse.
type Common struct {
	faults        *string
	cachePolicy   *string
	cacheBudget   *int64
	compressFeat  *string
	compressGrad  *string
	report        *string
	strategy      *string
	parallel      *int
	traceMaxEvent *int
}

// Register installs the shared flags on fs and returns the bound Common.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	c.faults = fs.String("faults", "",
		"fault schedule, e.g. 'crash@gpu2:t=0.2,stall@gpu0:t=0.1+50ms'")
	c.cachePolicy = fs.String("cache", "static",
		"adaptive feature-cache policy: static, lfu, hybrid")
	c.cacheBudget = fs.Int64("cache-budget", 0,
		"per-GPU feature cache budget in bytes (0 = fill free memory)")
	c.compressFeat = fs.String("compress-feat", "",
		"feature-transfer codec: none, fp32, fp16, int8, topk[:ratio] (NVLink replies and NIC sends)")
	c.report = fs.String("report", "",
		"write the machine-readable run report ("+prof.Schema+" JSON) to this file")
	c.strategy = fs.String("strategy", "dsp",
		"execution strategy: dsp (paper layout: partitioned features, hot/cold gather) or p3 (dimension-partitioned features, push-pull layer 1)")
	c.parallel = fs.Int("parallel", 1,
		"OS threads for offloaded simulator data work (sampling draws, codec encodes, reductions); results are bitwise identical at any value")
	c.traceMaxEvent = fs.Int("trace-max-events", 0,
		"cap the in-memory trace buffer at this many events, dropping the oldest (0 = unbounded)")
	return c
}

// TraceMaxEvents returns the -trace-max-events ring cap (0 = unbounded).
func (c *Common) TraceMaxEvents() int {
	if *c.traceMaxEvent < 0 {
		return 0
	}
	return *c.traceMaxEvent
}

// Parallel returns the -parallel thread budget (minimum 1).
func (c *Common) Parallel() int {
	if *c.parallel < 1 {
		return 1
	}
	return *c.parallel
}

// Graph holds the graph-storage flag values shared by dsptrain, dspserve and
// dspdata: compressed CSR topology and the out-of-core host/disk tier.
type Graph struct {
	compress      *bool
	ooc           *bool
	oocBudget     *int64
	oocNoPrefetch *bool
}

// RegisterGraph installs the graph-storage flags on fs.
func RegisterGraph(fs *flag.FlagSet) *Graph {
	g := &Graph{}
	g.compress = fs.Bool("graph-compress", false,
		"store the partitioned topology varint-compressed (delta-sorted gap encoding; ~4x smaller, decode kernel per sampled row)")
	g.ooc = fs.Bool("ooc", false,
		"enable the out-of-core tier: spill topology and feature blocks to a simulated NVMe device below host memory")
	g.oocBudget = fs.Int64("ooc-budget", 0,
		"host block-cache budget in bytes for -ooc (0 = half the block bytes)")
	g.oocNoPrefetch = fs.Bool("ooc-no-prefetch", false,
		"disable the proximity-aware block prefetcher (with -ooc every host read stalls on demand fetches)")
	return g
}

// Compress returns the -graph-compress value.
func (g *Graph) Compress() bool { return *g.compress }

// OOC returns the -ooc value.
func (g *Graph) OOC() bool { return *g.ooc }

// OOCBudget returns the -ooc-budget value.
func (g *Graph) OOCBudget() int64 { return *g.oocBudget }

// OOCNoPrefetch returns the -ooc-no-prefetch value.
func (g *Graph) OOCNoPrefetch() bool { return *g.oocNoPrefetch }

// Describe returns the operator-facing one-liner for the selected graph
// storage mode, or "" when every flag is off.
func (g *Graph) Describe() string {
	var parts []string
	if g.Compress() {
		parts = append(parts, "compressed topology (delta-sorted varint)")
	}
	if g.OOC() {
		pf := "proximity prefetch on"
		if g.OOCNoPrefetch() {
			pf = "prefetch off"
		}
		parts = append(parts, "out-of-core tier ("+pf+")")
	}
	return strings.Join(parts, ", ")
}

// RegisterGrad additionally installs the gradient-compression flag (training
// binaries only; serving has no gradients).
func (c *Common) RegisterGrad(fs *flag.FlagSet) {
	c.compressGrad = fs.String("compress-grad", "",
		"gradient-allreduce codec: none, fp32, fp16, int8, topk[:ratio] (lossy codecs change the training for real)")
}

// FaultSchedule parses the -faults spec against the fleet size.
func (c *Common) FaultSchedule(gpus int) ([]fault.Fault, error) {
	return fault.ParseSpec(*c.faults, gpus)
}

// FaultSpec returns the raw -faults string (empty = no faults).
func (c *Common) FaultSpec() string { return *c.faults }

// Policy resolves the -cache flag.
func (c *Common) Policy() (cache.Policy, error) {
	return cache.ParsePolicy(*c.cachePolicy)
}

// CacheBudget returns the -cache-budget value.
func (c *Common) CacheBudget() int64 { return *c.cacheBudget }

// StrategyKind resolves the -strategy flag and rejects flag combinations the
// p3 layout cannot honour: row-cache policies and budgets act on the hot/cold
// row split, which a dimension-sliced store does not have.
func (c *Common) StrategyKind() (strategy.Kind, error) {
	kind, err := strategy.Parse(*c.strategy)
	if err != nil {
		return kind, err
	}
	if kind == strategy.KindP3 {
		pol, perr := c.Policy()
		if perr == nil && pol != cache.Static {
			return kind, fmt.Errorf("cliopts: -strategy p3 is incompatible with -cache %s: the dimension-sliced layout has no rows to promote or rebalance (use -cache static)", pol)
		}
		if c.CacheBudget() > 0 {
			return kind, fmt.Errorf("cliopts: -strategy p3 ignores -cache-budget: each GPU holds the full [#nodes, F/world] slice")
		}
	}
	return kind, nil
}

// FeatCodec resolves the -compress-feat flag; the seed drives stochastic
// codecs so runs stay reproducible.
func (c *Common) FeatCodec(seed uint64) (compress.Codec, error) {
	return compress.Parse(*c.compressFeat, seed)
}

// GradCodec resolves the -compress-grad flag (RegisterGrad must have run).
func (c *Common) GradCodec(seed uint64) (compress.Codec, error) {
	if c.compressGrad == nil {
		return nil, nil
	}
	return compress.Parse(*c.compressGrad, seed)
}

// Fleet holds the replicated-serving flag values (dspserve only): fleet
// count, routing policy, tenant quotas, latency SLO and autoscale bounds.
type Fleet struct {
	fleets    *int
	router    *string
	tenants   *string
	slo       *float64
	autoscale *string
}

// RegisterFleet installs the replicated-serving flags on fs.
func RegisterFleet(fs *flag.FlagSet) *Fleet {
	f := &Fleet{}
	f.fleets = fs.Int("fleets", 1,
		"replicated serving fleets behind the router (1 = no router)")
	f.router = fs.String("router", "round-robin",
		"routing policy: round-robin, least-loaded, latency-aware, shard-affinity")
	f.tenants = fs.String("tenants", "",
		"tenant spec 'name:weight[:rate[:burst]],...', e.g. 'free:4:500,pro:1'")
	f.slo = fs.Float64("slo", 0,
		"end-to-end latency SLO in virtual seconds (enables goodput accounting; 0 = none)")
	f.autoscale = fs.String("autoscale", "",
		"autoscale active fleets between 'min:max' on the SLO bands (empty = static fleet set)")
	return f
}

// N returns the -fleets count.
func (f *Fleet) N() int { return *f.fleets }

// Policy resolves the -router flag.
func (f *Fleet) Policy() (fleet.Policy, error) {
	return fleet.ParsePolicy(*f.router)
}

// Tenants resolves the -tenants spec.
func (f *Fleet) Tenants() ([]serve.TenantSpec, error) {
	return serve.ParseTenants(*f.tenants)
}

// SLO returns the -slo objective.
func (f *Fleet) SLO() sim.Time { return sim.Time(*f.slo) }

// Autoscale resolves the -autoscale 'min:max' bounds (zero value = disabled).
func (f *Fleet) Autoscale() (fleet.Autoscale, error) {
	spec := strings.TrimSpace(*f.autoscale)
	if spec == "" {
		return fleet.Autoscale{}, nil
	}
	lo, hi, ok := strings.Cut(spec, ":")
	var as fleet.Autoscale
	var err error
	if as.Min, err = strconv.Atoi(lo); err == nil && ok {
		as.Max, err = strconv.Atoi(hi)
	}
	if err != nil || !ok || as.Min < 1 || as.Max < as.Min {
		return fleet.Autoscale{}, fmt.Errorf("cliopts: bad -autoscale %q (want 'min:max' with 1 <= min <= max)", spec)
	}
	return as, nil
}

// FleetMode reports whether the run needs the router: more than one fleet or
// autoscaling headroom.
func (f *Fleet) FleetMode() bool {
	as, err := f.Autoscale()
	return *f.fleets > 1 || (err == nil && as.Max > 1)
}

// FleetFaultSchedule parses the -faults spec in the fleet-scoped grammar
// (crash@fleetF, stall@fleetF/gpuN, ...) against the built fleet count and
// per-fleet GPU count.
func (c *Common) FleetFaultSchedule(nFleet, gpusPer int) ([]fault.FleetFault, error) {
	return fault.ParseFleetSpec(*c.faults, nFleet, gpusPer)
}

// Telemetry holds the -telemetry flag group shared by dsptrain and
// dspserve: the virtual-time scraper, per-request span accounting and the
// SLO burn-rate alert engine (internal/telemetry).
type Telemetry struct {
	enabled  *bool
	out      *string
	interval *float64
	ring     *int
	target   *float64
}

// RegisterTelemetry installs the -telemetry flag group on fs.
func RegisterTelemetry(fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{}
	t.enabled = fs.Bool("telemetry", false,
		"enable the live telemetry hub: virtual-time metric scraping, per-request stage spans and SLO burn-rate alerting")
	t.out = fs.String("telemetry-out", "",
		"write the "+telemetry.DocSchema+" JSON document to this file (implies -telemetry; render with dspmon)")
	t.interval = fs.Float64("telemetry-interval", 0,
		"scrape cadence in virtual seconds (0 = default 2ms)")
	t.ring = fs.Int("telemetry-ring", 0,
		"per-series ring capacity; older samples are dropped (0 = default 2048)")
	t.target = fs.Float64("slo-target", 0,
		"availability target whose error budget the burn-rate alerts consume, e.g. 0.99 (0 = default 0.99)")
	return t
}

// Enabled reports whether any telemetry flag turned the hub on.
func (t *Telemetry) Enabled() bool { return *t.enabled || *t.out != "" }

// OutPath returns the -telemetry-out destination (may be empty).
func (t *Telemetry) OutPath() string { return *t.out }

// Hub builds the configured hub, or nil when telemetry is off. slo is the
// run's latency objective (the -slo flag for serving; seconds).
func (t *Telemetry) Hub(slo sim.Time) *telemetry.Hub {
	if !t.Enabled() {
		return nil
	}
	return telemetry.New(telemetry.Config{
		Interval: sim.Time(*t.interval),
		RingCap:  *t.ring,
		SLO:      slo,
		Target:   *t.target,
	})
}

// Finish closes the hub at virtual time end, validates the document,
// writes it when -telemetry-out was given, and returns it (nil when
// telemetry is off).
func (t *Telemetry) Finish(h *telemetry.Hub, end sim.Time) (*telemetry.Doc, error) {
	if !h.Enabled() {
		return nil, nil
	}
	doc := h.Finish(end)
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("cliopts: telemetry document invalid: %w", err)
	}
	if *t.out != "" {
		if err := doc.WriteFile(*t.out); err != nil {
			return nil, err
		}
		fmt.Printf("wrote telemetry to %s\n", *t.out)
	}
	return doc, nil
}

// ReportPath returns the -report destination (empty = no report requested).
func (c *Common) ReportPath() string { return *c.report }

// WriteReport validates and writes the run report when -report was given,
// printing a confirmation line. No-op without the flag.
func (c *Common) WriteReport(r *prof.RunReport) error {
	if *c.report == "" {
		return nil
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if err := r.WriteFile(*c.report); err != nil {
		return err
	}
	fmt.Printf("wrote run report to %s\n", *c.report)
	return nil
}
