// Package cliopts centralises the CLI flag wiring shared by the dsptrain
// and dspserve binaries — fault injection, adaptive-cache selection, and
// communication compression — so the two frontends register identical flags
// and resolve them through the same validation paths instead of drifting.
package cliopts

import (
	"flag"
	"fmt"

	"repro/internal/cache"
	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/prof"
)

// Common holds the flag values shared by every binary that drives the
// simulated fleet. Construct it with Register; read the resolved values
// through the accessor methods after flag.Parse.
type Common struct {
	faults       *string
	cachePolicy  *string
	cacheBudget  *int64
	compressFeat *string
	compressGrad *string
	report       *string
}

// Register installs the shared flags on fs and returns the bound Common.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	c.faults = fs.String("faults", "",
		"fault schedule, e.g. 'crash@gpu2:t=0.2,stall@gpu0:t=0.1+50ms'")
	c.cachePolicy = fs.String("cache", "static",
		"adaptive feature-cache policy: static, lfu, hybrid")
	c.cacheBudget = fs.Int64("cache-budget", 0,
		"per-GPU feature cache budget in bytes (0 = fill free memory)")
	c.compressFeat = fs.String("compress-feat", "",
		"feature-transfer codec: none, fp32, fp16, int8, topk[:ratio] (NVLink replies and NIC sends)")
	c.report = fs.String("report", "",
		"write the machine-readable run report ("+prof.Schema+" JSON) to this file")
	return c
}

// RegisterGrad additionally installs the gradient-compression flag (training
// binaries only; serving has no gradients).
func (c *Common) RegisterGrad(fs *flag.FlagSet) {
	c.compressGrad = fs.String("compress-grad", "",
		"gradient-allreduce codec: none, fp32, fp16, int8, topk[:ratio] (lossy codecs change the training for real)")
}

// FaultSchedule parses the -faults spec against the fleet size.
func (c *Common) FaultSchedule(gpus int) ([]fault.Fault, error) {
	return fault.ParseSpec(*c.faults, gpus)
}

// FaultSpec returns the raw -faults string (empty = no faults).
func (c *Common) FaultSpec() string { return *c.faults }

// Policy resolves the -cache flag.
func (c *Common) Policy() (cache.Policy, error) {
	return cache.ParsePolicy(*c.cachePolicy)
}

// CacheBudget returns the -cache-budget value.
func (c *Common) CacheBudget() int64 { return *c.cacheBudget }

// FeatCodec resolves the -compress-feat flag; the seed drives stochastic
// codecs so runs stay reproducible.
func (c *Common) FeatCodec(seed uint64) (compress.Codec, error) {
	return compress.Parse(*c.compressFeat, seed)
}

// GradCodec resolves the -compress-grad flag (RegisterGrad must have run).
func (c *Common) GradCodec(seed uint64) (compress.Codec, error) {
	if c.compressGrad == nil {
		return nil, nil
	}
	return compress.Parse(*c.compressGrad, seed)
}

// ReportPath returns the -report destination (empty = no report requested).
func (c *Common) ReportPath() string { return *c.report }

// WriteReport validates and writes the run report when -report was given,
// printing a confirmation line. No-op without the flag.
func (c *Common) WriteReport(r *prof.RunReport) error {
	if *c.report == "" {
		return nil
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if err := r.WriteFile(*c.report); err != nil {
		return err
	}
	fmt.Printf("wrote run report to %s\n", *c.report)
	return nil
}
