// Package partition implements graph partitioning for DSP's data layout.
//
// The paper partitions the graph topology into well-connected patches with
// METIS, one patch per GPU, so that most adjacency-list accesses during
// collective sampling are local. This package provides a METIS-style
// multilevel k-way partitioner (heavy-edge-matching coarsening, greedy
// growing initial partition, FM-style boundary refinement during
// uncoarsening) plus a hash partitioner used as the locality-free control in
// the ablation benchmarks, and the renumbering that gives every patch a
// consecutive global-id range (making ownership lookup a range check).
package partition

import (
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Result is a k-way node assignment.
type Result struct {
	K     int
	Parts []int32 // Parts[v] in [0,K)
}

// Validate checks the assignment covers every node with a valid part.
func (r *Result) Validate(n int) error {
	if len(r.Parts) != n {
		return fmt.Errorf("partition: %d assignments for %d nodes", len(r.Parts), n)
	}
	for v, p := range r.Parts {
		if p < 0 || int(p) >= r.K {
			return fmt.Errorf("partition: node %d in part %d of %d", v, p, r.K)
		}
	}
	return nil
}

// PartSizes returns node counts per part.
func (r *Result) PartSizes() []int {
	sizes := make([]int, r.K)
	for _, p := range r.Parts {
		sizes[p]++
	}
	return sizes
}

// Imbalance returns max part size over ideal size.
func (r *Result) Imbalance() float64 {
	sizes := r.PartSizes()
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	ideal := float64(len(r.Parts)) / float64(r.K)
	return float64(maxSize) / ideal
}

// EdgeCut returns the number of adjacency entries of g whose endpoint lives
// in a different part, and the fraction of all entries.
func EdgeCut(g *graph.CSR, r *Result) (int64, float64) {
	var cut int64
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		pv := r.Parts[v]
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if r.Parts[u] != pv {
				cut++
			}
		}
	}
	total := g.NumEdges()
	if total == 0 {
		return 0, 0
	}
	return cut, float64(cut) / float64(total)
}

// Hash assigns node v to part v mod k — the locality-free baseline.
func Hash(g *graph.CSR, k int) *Result {
	n := g.NumNodes()
	r := &Result{K: k, Parts: make([]int32, n)}
	for v := 0; v < n; v++ {
		r.Parts[v] = int32(v % k)
	}
	return r
}

// maxImbalance is the balance constraint of refinement (METIS default ~1.03;
// we allow a little more because patches must also balance feature shards).
const maxImbalance = 1.05

// Metis computes a k-way partition with a multilevel scheme. It is
// deterministic for a given (graph, k, seed).
func Metis(g *graph.CSR, k int, seed uint64) *Result {
	n := g.NumNodes()
	if k <= 0 {
		panic("partition: k must be positive")
	}
	if k == 1 {
		return &Result{K: 1, Parts: make([]int32, n)}
	}
	r := rng.New(seed)
	w := buildWork(g)

	// Coarsening phase.
	var levels []*workGraph
	var maps [][]int32 // maps[i][v] = coarse id of v at level i+1
	cur := w
	coarsenTarget := 30 * k
	if coarsenTarget < 256 {
		coarsenTarget = 256
	}
	for cur.n > coarsenTarget {
		cmap, coarse := cur.coarsen(r)
		if coarse.n >= cur.n*95/100 {
			break // diminishing returns
		}
		levels = append(levels, cur)
		maps = append(maps, cmap)
		cur = coarse
	}

	// Initial partition on the coarsest graph.
	parts := cur.greedyGrow(k, r)
	cur.refine(parts, k, 8, r)

	// Uncoarsening with refinement.
	for i := len(levels) - 1; i >= 0; i-- {
		fine := levels[i]
		cmap := maps[i]
		fineParts := make([]int32, fine.n)
		for v := 0; v < fine.n; v++ {
			fineParts[v] = parts[cmap[v]]
		}
		parts = fineParts
		fine.refine(parts, k, 4, r)
	}
	return &Result{K: k, Parts: parts}
}

// workGraph is the symmetrized, weighted graph the partitioner operates on.
type workGraph struct {
	n      int
	indptr []int64
	adj    []int32
	ew     []int64 // edge weights, aligned with adj
	nw     []int64 // node weights
	totalW int64
}

// buildWork symmetrizes g (union of in/out edges), deduplicates multi-edges
// into weights and drops self-loops.
func buildWork(g *graph.CSR) *workGraph {
	n := g.NumNodes()
	// Emit both directions of every adjacency entry.
	type rec struct{ u, v int32 }
	m := len(g.Indices)
	recs := make([]rec, 0, 2*m)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if int(u) == v {
				continue
			}
			recs = append(recs, rec{int32(v), u})
			recs = append(recs, rec{u, int32(v)})
		}
	}
	// Bucket by u (counting sort) then sort each bucket by v and merge.
	counts := make([]int64, n+1)
	for _, e := range recs {
		counts[e.u+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	bucketed := make([]int32, len(recs))
	cursor := make([]int64, n)
	copy(cursor, counts[:n])
	for _, e := range recs {
		bucketed[cursor[e.u]] = e.v
		cursor[e.u]++
	}
	w := &workGraph{n: n, nw: make([]int64, n)}
	w.indptr = make([]int64, n+1)
	for v := 0; v < n; v++ {
		w.nw[v] = 1
		bucket := bucketed[counts[v]:counts[v+1]]
		slices.Sort(bucket)
		for i := 0; i < len(bucket); {
			j := i
			for j < len(bucket) && bucket[j] == bucket[i] {
				j++
			}
			w.adj = append(w.adj, bucket[i])
			w.ew = append(w.ew, int64(j-i))
			i = j
		}
		w.indptr[v+1] = int64(len(w.adj))
	}
	w.totalW = int64(n)
	return w
}

// coarsen contracts a heavy-edge matching; returns the fine->coarse map and
// the coarse graph.
func (w *workGraph) coarsen(r *rng.RNG) ([]int32, *workGraph) {
	match := make([]int32, w.n)
	for i := range match {
		match[i] = -1
	}
	order := r.Perm(w.n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		var best int32 = -1
		var bestW int64 = -1
		for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
			u := w.adj[i]
			if match[u] >= 0 || u == v {
				continue
			}
			if w.ew[i] > bestW {
				bestW = w.ew[i]
				best = u
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	// Assign coarse ids.
	cmap := make([]int32, w.n)
	for i := range cmap {
		cmap[i] = -1
	}
	var cn int32
	for v := 0; v < w.n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = cn
		m := match[v]
		if int(m) != v && cmap[m] < 0 {
			cmap[m] = cn
		}
		cn++
	}
	// Build coarse graph: aggregate edges between coarse nodes.
	coarse := &workGraph{n: int(cn), nw: make([]int64, cn)}
	for v := 0; v < w.n; v++ {
		coarse.nw[cmap[v]] += w.nw[v]
	}
	coarse.totalW = w.totalW
	// Bucket edges by coarse source.
	type edge struct {
		u, v int32
		wt   int64
	}
	edges := make([]edge, 0, len(w.adj))
	for v := 0; v < w.n; v++ {
		cv := cmap[v]
		for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
			cu := cmap[w.adj[i]]
			if cu == cv {
				continue
			}
			edges = append(edges, edge{cv, cu, w.ew[i]})
		}
	}
	slices.SortFunc(edges, func(a, b edge) int {
		if a.u != b.u {
			return int(a.u) - int(b.u)
		}
		return int(a.v) - int(b.v)
	})
	coarse.indptr = make([]int64, cn+1)
	idx := 0
	for v := int32(0); v < cn; v++ {
		for idx < len(edges) && edges[idx].u == v {
			j := idx
			var sum int64
			for j < len(edges) && edges[j].u == v && edges[j].v == edges[idx].v {
				sum += edges[j].wt
				j++
			}
			coarse.adj = append(coarse.adj, edges[idx].v)
			coarse.ew = append(coarse.ew, sum)
			idx = j
		}
		coarse.indptr[v+1] = int64(len(coarse.adj))
	}
	return cmap, coarse
}

// greedyGrow produces an initial k-way partition by growing connected
// regions up to the balance target.
func (w *workGraph) greedyGrow(k int, r *rng.RNG) []int32 {
	parts := make([]int32, w.n)
	for i := range parts {
		parts[i] = -1
	}
	target := w.totalW / int64(k)
	assigned := 0
	for p := 0; p < k-1; p++ {
		// Seed: random unassigned node.
		var seedNode int32 = -1
		for tries := 0; tries < 64 && seedNode < 0; tries++ {
			c := int32(r.Intn(w.n))
			if parts[c] < 0 {
				seedNode = c
			}
		}
		if seedNode < 0 {
			for v := 0; v < w.n; v++ {
				if parts[v] < 0 {
					seedNode = int32(v)
					break
				}
			}
		}
		if seedNode < 0 {
			break
		}
		// Grow by max connectivity to the region (simple frontier scan).
		var regionW int64
		parts[seedNode] = int32(p)
		regionW += w.nw[seedNode]
		assigned++
		gain := map[int32]int64{}
		addNeighbors := func(v int32) {
			for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
				u := w.adj[i]
				if parts[u] < 0 {
					gain[u] += w.ew[i]
				}
			}
		}
		addNeighbors(seedNode)
		for regionW < target && assigned < w.n {
			// Pick the unassigned node with max gain (deterministic
			// tie-break on id).
			var best int32 = -1
			var bestG int64 = -1
			for u, g := range gain {
				if g > bestG || (g == bestG && (best < 0 || u < best)) {
					best, bestG = u, g
				}
			}
			if best < 0 {
				// Region is disconnected from the rest: jump to any
				// unassigned node.
				for v := 0; v < w.n; v++ {
					if parts[v] < 0 {
						best = int32(v)
						break
					}
				}
				if best < 0 {
					break
				}
			}
			delete(gain, best)
			parts[best] = int32(p)
			regionW += w.nw[best]
			assigned++
			addNeighbors(best)
		}
	}
	// Remainder goes to the last part.
	for v := 0; v < w.n; v++ {
		if parts[v] < 0 {
			parts[v] = int32(k - 1)
		}
	}
	return parts
}

// refine runs FM-style greedy boundary passes: move a node to the
// neighbouring part with the highest positive gain, subject to the balance
// constraint.
func (w *workGraph) refine(parts []int32, k int, passes int, r *rng.RNG) {
	partW := make([]int64, k)
	for v := 0; v < w.n; v++ {
		partW[parts[v]] += w.nw[v]
	}
	limit := int64(float64(w.totalW) / float64(k) * maxImbalance)
	conn := make([]int64, k) // scratch: connectivity of v to each part
	for pass := 0; pass < passes; pass++ {
		moved := 0
		order := r.Perm(w.n)
		for _, vi := range order {
			v := int32(vi)
			pv := parts[v]
			// Compute connectivity to each part; skip interior nodes fast.
			boundary := false
			for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
				if parts[w.adj[i]] != pv {
					boundary = true
					break
				}
			}
			if !boundary {
				continue
			}
			for p := range conn {
				conn[p] = 0
			}
			for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
				conn[parts[w.adj[i]]] += w.ew[i]
			}
			bestP := pv
			bestGain := int64(0)
			for p := 0; p < k; p++ {
				if int32(p) == pv {
					continue
				}
				if partW[p]+w.nw[v] > limit {
					continue
				}
				gain := conn[p] - conn[pv]
				if gain > bestGain || (gain == bestGain && gain > 0 && partW[p] < partW[bestP]) {
					bestGain = gain
					bestP = int32(p)
				}
			}
			if bestP != pv && bestGain > 0 {
				partW[pv] -= w.nw[v]
				partW[bestP] += w.nw[v]
				parts[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	w.rebalance(parts, k, partW, limit, r)
}

// rebalance forcibly empties overweight parts: boundary nodes of any part
// above the balance limit move to their best-connected underweight part,
// accepting negative gain (gain-driven refinement alone cannot repair a
// badly imbalanced initial partition). At the finest level node weights are
// 1, so the limit is always achievable.
func (w *workGraph) rebalance(parts []int32, k int, partW []int64, limit int64, r *rng.RNG) {
	conn := make([]int64, k)
	for pass := 0; pass < 8; pass++ {
		over := false
		for p := 0; p < k; p++ {
			if partW[p] > limit {
				over = true
			}
		}
		if !over {
			return
		}
		moved := 0
		order := r.Perm(w.n)
		for _, vi := range order {
			v := int32(vi)
			pv := parts[v]
			if partW[pv] <= limit {
				continue
			}
			for p := range conn {
				conn[p] = 0
			}
			for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
				conn[parts[w.adj[i]]] += w.ew[i]
			}
			best := int32(-1)
			var bestKey int64 = -1 << 62
			for p := 0; p < k; p++ {
				if int32(p) == pv || partW[p]+w.nw[v] > limit {
					continue
				}
				// Prefer connectivity, then lighter parts.
				key := conn[p]*1000 - partW[p]
				if key > bestKey {
					bestKey = key
					best = int32(p)
				}
			}
			if best >= 0 {
				partW[pv] -= w.nw[v]
				partW[best] += w.nw[v]
				parts[v] = best
				moved++
				if partW[pv] <= limit {
					continue
				}
			}
		}
		if moved == 0 {
			return
		}
	}
}
