package partition

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// Renumbering is a bijection between original node ids and the layout ids
// DSP uses, in which every patch owns a consecutive id range. The paper
// renumbers nodes so the owning GPU of a node is a simple range check, and
// adjacency lists store the (new) global ids of neighbours.
type Renumbering struct {
	K int
	// NewID maps old id -> new id; OldID is the inverse.
	NewID []graph.NodeID
	OldID []graph.NodeID
	// Offsets has K+1 entries; part p owns new ids [Offsets[p], Offsets[p+1]).
	Offsets []int64
}

// BuildRenumbering orders nodes by (part, old id).
func BuildRenumbering(res *Result) *Renumbering {
	n := len(res.Parts)
	r := &Renumbering{
		K:     res.K,
		NewID: make([]graph.NodeID, n),
		OldID: make([]graph.NodeID, n),
	}
	sizes := res.PartSizes()
	r.Offsets = make([]int64, res.K+1)
	for p := 0; p < res.K; p++ {
		r.Offsets[p+1] = r.Offsets[p] + int64(sizes[p])
	}
	cursor := make([]int64, res.K)
	copy(cursor, r.Offsets[:res.K])
	for old := 0; old < n; old++ {
		p := res.Parts[old]
		nid := graph.NodeID(cursor[p])
		cursor[p]++
		r.NewID[old] = nid
		r.OldID[nid] = graph.NodeID(old)
	}
	return r
}

// Owner returns the part owning a new-layout node id via range check.
func (r *Renumbering) Owner(newID graph.NodeID) int {
	// K is tiny (<= 8 GPUs); a linear range check mirrors the paper's
	// "simple range check" and beats binary search at this size.
	id := int64(newID)
	for p := 0; p < r.K; p++ {
		if id < r.Offsets[p+1] {
			return p
		}
	}
	panic(fmt.Sprintf("partition: node id %d out of range", newID))
}

// OwnedRange returns the new-id range [lo, hi) owned by part p.
func (r *Renumbering) OwnedRange(p int) (lo, hi graph.NodeID) {
	return graph.NodeID(r.Offsets[p]), graph.NodeID(r.Offsets[p+1])
}

// ApplyToGraph returns a new CSR in layout order: node NewID[v] has node v's
// adjacency list with every neighbour id remapped.
func (r *Renumbering) ApplyToGraph(g *graph.CSR) *graph.CSR {
	n := g.NumNodes()
	out := &graph.CSR{Indptr: make([]int64, n+1)}
	var total int64
	for nid := 0; nid < n; nid++ {
		old := r.OldID[nid]
		total += int64(g.Degree(old))
		out.Indptr[nid+1] = total
	}
	out.Indices = make([]graph.NodeID, 0, total)
	if g.Weights != nil {
		out.Weights = make([]float32, 0, total)
	}
	for nid := 0; nid < n; nid++ {
		old := r.OldID[nid]
		for _, u := range g.Neighbors(old) {
			out.Indices = append(out.Indices, r.NewID[u])
		}
		if g.Weights != nil {
			out.Weights = append(out.Weights, g.NeighborWeights(old)...)
		}
	}
	return out
}

// ApplyToIDs remaps a slice of old node ids into layout ids (copy).
func (r *Renumbering) ApplyToIDs(ids []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(ids))
	for i, v := range ids {
		out[i] = r.NewID[v]
	}
	return out
}

// ApplyToFeatures reorders a flat node-major feature matrix into layout
// order.
func (r *Renumbering) ApplyToFeatures(features []float32, dim int) []float32 {
	n := len(r.NewID)
	out := make([]float32, len(features))
	for nid := 0; nid < n; nid++ {
		old := int(r.OldID[nid])
		copy(out[nid*dim:(nid+1)*dim], features[old*dim:(old+1)*dim])
	}
	return out
}

// ApplyToLabels reorders per-node labels into layout order.
func (r *Renumbering) ApplyToLabels(labels []int32) []int32 {
	out := make([]int32, len(labels))
	for nid := range out {
		out[nid] = labels[r.OldID[nid]]
	}
	return out
}

// SortOwned returns the layout ids owned by part p from ids (already in
// layout space), sorted ascending — used to co-partition seed nodes.
func (r *Renumbering) SortOwned(ids []graph.NodeID, p int) []graph.NodeID {
	lo, hi := r.OwnedRange(p)
	var out []graph.NodeID
	for _, v := range ids {
		if v >= lo && v < hi {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}
