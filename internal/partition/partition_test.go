package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func testGraph() *gen.Dataset {
	return gen.Generate(gen.Config{
		Name: "t", Nodes: 4000, AvgDegree: 16, FeatDim: 4,
		NumClasses: 8, Seed: 7,
	})
}

func TestHashPartitionCoversAllParts(t *testing.T) {
	d := testGraph()
	r := Hash(d.G, 4)
	if err := r.Validate(d.G.NumNodes()); err != nil {
		t.Fatal(err)
	}
	sizes := r.PartSizes()
	for p, s := range sizes {
		if s == 0 {
			t.Errorf("part %d empty", p)
		}
	}
	if r.Imbalance() > 1.01 {
		t.Errorf("hash imbalance %v", r.Imbalance())
	}
}

func TestMetisValidAndBalanced(t *testing.T) {
	d := testGraph()
	for _, k := range []int{2, 4, 8} {
		r := Metis(d.G, k, 1)
		if err := r.Validate(d.G.NumNodes()); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if imb := r.Imbalance(); imb > 1.10 {
			t.Errorf("k=%d imbalance %.3f > 1.10", k, imb)
		}
	}
}

func TestMetisBeatsHashOnEdgeCut(t *testing.T) {
	// The whole point of METIS-style partitioning: far fewer cross-patch
	// edges on a community graph than hash partitioning.
	d := testGraph()
	for _, k := range []int{2, 4, 8} {
		m := Metis(d.G, k, 1)
		h := Hash(d.G, k)
		_, mcut := EdgeCut(d.G, m)
		_, hcut := EdgeCut(d.G, h)
		if mcut > 0.7*hcut {
			t.Errorf("k=%d: metis cut %.3f not clearly better than hash cut %.3f", k, mcut, hcut)
		}
	}
}

func TestMetisDeterministic(t *testing.T) {
	d := testGraph()
	a := Metis(d.G, 4, 3)
	b := Metis(d.G, 4, 3)
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			t.Fatalf("nondeterministic at node %d", v)
		}
	}
}

func TestMetisK1(t *testing.T) {
	d := testGraph()
	r := Metis(d.G, 1, 0)
	for _, p := range r.Parts {
		if p != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
}

func TestMetisTinyGraph(t *testing.T) {
	// Smaller than the coarsening target: straight to initial partition.
	g := graph.FromEdges(6,
		[]graph.NodeID{0, 1, 2, 3, 4, 5, 0, 3},
		[]graph.NodeID{1, 0, 3, 2, 5, 4, 2, 5})
	r := Metis(g, 2, 0)
	if err := r.Validate(6); err != nil {
		t.Fatal(err)
	}
	sizes := r.PartSizes()
	if sizes[0] == 0 || sizes[1] == 0 {
		t.Fatalf("degenerate split %v", sizes)
	}
}

func TestRenumberingBijection(t *testing.T) {
	d := testGraph()
	res := Metis(d.G, 4, 1)
	r := BuildRenumbering(res)
	if err := quick.Check(func(raw uint32) bool {
		v := graph.NodeID(int(raw) % d.G.NumNodes())
		return r.NewID[r.OldID[v]] == v && r.OldID[r.NewID[v]] == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRenumberingConsecutiveRanges(t *testing.T) {
	d := testGraph()
	res := Metis(d.G, 4, 1)
	r := BuildRenumbering(res)
	if r.Offsets[0] != 0 || r.Offsets[4] != int64(d.G.NumNodes()) {
		t.Fatalf("offsets %v", r.Offsets)
	}
	// Every node's owner under renumbering equals its original part.
	for old, p := range res.Parts {
		nid := r.NewID[old]
		if r.Owner(nid) != int(p) {
			t.Fatalf("node %d: owner %d, part %d", old, r.Owner(nid), p)
		}
	}
	// Ranges are exactly the part sizes.
	sizes := res.PartSizes()
	for p := 0; p < 4; p++ {
		lo, hi := r.OwnedRange(p)
		if int(hi-lo) != sizes[p] {
			t.Fatalf("part %d range size %d, want %d", p, hi-lo, sizes[p])
		}
	}
}

func TestApplyToGraphPreservesStructure(t *testing.T) {
	d := testGraph()
	res := Metis(d.G, 4, 1)
	r := BuildRenumbering(res)
	ng := r.ApplyToGraph(d.G)
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges() != d.G.NumEdges() {
		t.Fatal("edge count changed")
	}
	// Spot-check: adjacency of new node nid equals remapped adjacency of
	// the old node.
	rr := rng.New(4)
	for trial := 0; trial < 100; trial++ {
		nid := graph.NodeID(rr.Intn(ng.NumNodes()))
		old := r.OldID[nid]
		a := ng.Neighbors(nid)
		b := d.G.Neighbors(old)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", nid)
		}
		for i := range a {
			if a[i] != r.NewID[b[i]] {
				t.Fatalf("adjacency mismatch at %d[%d]", nid, i)
			}
		}
	}
}

func TestApplyToFeaturesAndLabels(t *testing.T) {
	d := testGraph()
	res := Hash(d.G, 4)
	r := BuildRenumbering(res)
	nf := r.ApplyToFeatures(d.Features, d.FeatDim)
	nl := r.ApplyToLabels(d.Labels)
	for nid := 0; nid < d.G.NumNodes(); nid++ {
		old := r.OldID[nid]
		if nl[nid] != d.Labels[old] {
			t.Fatalf("label mismatch at %d", nid)
		}
		of := d.Feature(old)
		for j := 0; j < d.FeatDim; j++ {
			if nf[nid*d.FeatDim+j] != of[j] {
				t.Fatalf("feature mismatch at %d[%d]", nid, j)
			}
		}
	}
}

func TestSortOwned(t *testing.T) {
	d := testGraph()
	res := Metis(d.G, 4, 1)
	r := BuildRenumbering(res)
	train := r.ApplyToIDs(d.TrainIdx)
	total := 0
	for p := 0; p < 4; p++ {
		owned := r.SortOwned(train, p)
		total += len(owned)
		lo, hi := r.OwnedRange(p)
		for i, v := range owned {
			if v < lo || v >= hi {
				t.Fatalf("part %d got foreign seed %d", p, v)
			}
			if i > 0 && owned[i-1] >= v {
				t.Fatalf("part %d seeds not sorted", p)
			}
		}
	}
	if total != len(train) {
		t.Fatalf("seed co-partition lost nodes: %d of %d", total, len(train))
	}
}

func TestEdgeCutSymmetricCounting(t *testing.T) {
	// Two cliques joined by one edge, split at the bridge: cut counts the
	// bridge's adjacency entries.
	var src, dst []graph.NodeID
	addBoth := func(a, b graph.NodeID) {
		src = append(src, a, b)
		dst = append(dst, b, a)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			addBoth(graph.NodeID(i), graph.NodeID(j))
			addBoth(graph.NodeID(i+4), graph.NodeID(j+4))
		}
	}
	addBoth(0, 4)
	g := graph.FromEdges(8, src, dst)
	r := &Result{K: 2, Parts: []int32{0, 0, 0, 0, 1, 1, 1, 1}}
	cut, frac := EdgeCut(g, r)
	if cut != 2 {
		t.Fatalf("cut=%d, want 2 (both directions of the bridge)", cut)
	}
	if frac <= 0 || frac >= 1 {
		t.Fatalf("frac=%v", frac)
	}
}
