package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestMetisProperty checks the partitioner's invariants over randomised
// graphs and part counts: full cover, balance within the constraint, and an
// edge cut no worse than hash partitioning.
func TestMetisProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		nodes := 200 + r.Intn(3000)
		deg := 3 + r.Intn(14)
		k := 2 + r.Intn(7)
		d := gen.Generate(gen.Config{
			Name: "pp", Nodes: nodes, AvgDegree: float64(deg),
			FeatDim: 2, NumClasses: 4 + r.Intn(12), Seed: seed,
		})
		res := Metis(d.G, k, seed)
		if err := res.Validate(nodes); err != nil {
			t.Log(err)
			return false
		}
		if res.Imbalance() > 1.25 {
			t.Logf("seed %d: imbalance %.3f", seed, res.Imbalance())
			return false
		}
		_, mcut := EdgeCut(d.G, res)
		_, hcut := EdgeCut(d.G, Hash(d.G, k))
		if mcut > hcut {
			t.Logf("seed %d: metis cut %.3f worse than hash %.3f", seed, mcut, hcut)
			return false
		}
		// Renumbering stays a bijection with consecutive ranges.
		ren := BuildRenumbering(res)
		for p := 0; p < k; p++ {
			lo, hi := ren.OwnedRange(p)
			for v := lo; v < hi; v += graph.NodeID(1 + r.Intn(64)) {
				if ren.Owner(v) != p || ren.NewID[ren.OldID[v]] != v {
					t.Logf("seed %d: renumbering broken at %d", seed, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func(s uint16) bool { return check(uint64(s)) },
		&quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
